//! The SPEC CPU2017-rate-like benchmark suite of Table 2.
//!
//! SPEC CPU2017 itself is proprietary, so we ship 23 synthetic
//! benchmarks carrying the same names, split (13 fp-rate + 10 int-rate)
//! and *published per-benchmark rates from the paper's Table 2* as
//! calibration anchors: each benchmark's reference time is derived such
//! that an unloaded simulated Comet Lake reproduces the paper's
//! without-polling rates, and the with-polling deltas then *emerge* from
//! the polling module's stolen cycles. Instruction mixes are chosen per
//! benchmark character (fp-heavy, memory-heavy, integer/branchy).

use plugvolt_cpu::exec::InstrClass;
use serde::{Deserialize, Serialize};

/// SPEC-style benchmark category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// `fprate` — floating-point heavy.
    Fp,
    /// `intrate` — integer/branch heavy.
    Int,
}

/// Instruction-mix archetypes, as weights over the engine's classes.
pub type Mix = &'static [(InstrClass, u32)];

const FP_STENCIL: Mix = &[
    (InstrClass::Fma, 5),
    (InstrClass::Load, 4),
    (InstrClass::AluAdd, 1),
];
const FP_COMPUTE: Mix = &[
    (InstrClass::Fma, 7),
    (InstrClass::Load, 2),
    (InstrClass::AluAdd, 1),
];
const FP_MIXED: Mix = &[
    (InstrClass::Fma, 4),
    (InstrClass::Load, 3),
    (InstrClass::AluAdd, 2),
    (InstrClass::Imul, 1),
];
const INT_BRANCHY: Mix = &[
    (InstrClass::AluAdd, 6),
    (InstrClass::Load, 3),
    (InstrClass::Imul, 1),
];
const INT_MEMORY: Mix = &[
    (InstrClass::Load, 6),
    (InstrClass::AluAdd, 3),
    (InstrClass::Imul, 1),
];
const INT_CRYPTOISH: Mix = &[
    (InstrClass::AluAdd, 4),
    (InstrClass::Imul, 3),
    (InstrClass::Load, 3),
];

/// One benchmark of the suite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Benchmark {
    /// SPEC-style identifier, e.g. `"503.bwaves_r"`.
    pub name: &'static str,
    /// fp-rate or int-rate.
    pub category: Category,
    /// Instruction mix (class, weight).
    #[serde(skip)]
    pub mix: Mix,
    /// Instructions per copy for a *base*-tuning run.
    pub instructions: u64,
    /// Table 2 anchor: base rate without polling.
    pub paper_base_rate: f64,
    /// Table 2 anchor: peak rate without polling.
    pub paper_peak_rate: f64,
}

impl Benchmark {
    /// Instructions per copy for the given tuning. Peak tuning scales
    /// the work so the peak-rate anchor is reproduced.
    #[must_use]
    pub fn instructions_for(&self, tuning: Tuning) -> u64 {
        match tuning {
            Tuning::Base => self.instructions,
            Tuning::Peak => {
                (self.instructions as f64 * self.paper_base_rate / self.paper_peak_rate) as u64
            }
        }
    }

    /// The Table 2 anchor rate for a tuning.
    #[must_use]
    pub fn paper_rate(&self, tuning: Tuning) -> f64 {
        match tuning {
            Tuning::Base => self.paper_base_rate,
            Tuning::Peak => self.paper_peak_rate,
        }
    }
}

/// SPEC base vs peak tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tuning {
    /// Conservative flags, one set for all benchmarks.
    Base,
    /// Per-benchmark aggressive flags.
    Peak,
}

macro_rules! bench {
    ($name:literal, $cat:ident, $mix:ident, $instr:expr, $base:expr, $peak:expr) => {
        Benchmark {
            name: $name,
            category: Category::$cat,
            mix: $mix,
            instructions: $instr,
            paper_base_rate: $base,
            paper_peak_rate: $peak,
        }
    };
}

/// The 23 benchmarks of Table 2, with the paper's without-polling rates
/// as calibration anchors.
pub const SUITE: [Benchmark; 23] = [
    bench!(
        "503.bwaves_r",
        Fp,
        FP_STENCIL,
        2_400_000_000,
        628.59,
        604.21
    ),
    bench!(
        "507.cactuBSSN_r",
        Fp,
        FP_COMPUTE,
        2_000_000_000,
        222.95,
        202.87
    ),
    bench!("508.namd_r", Fp, FP_COMPUTE, 2_200_000_000, 175.96, 179.55),
    bench!("510.parest_r", Fp, FP_MIXED, 2_000_000_000, 387.96, 324.46),
    bench!("511.povray_r", Fp, FP_MIXED, 1_800_000_000, 328.67, 267.29),
    bench!("519.lbm_r", Fp, FP_STENCIL, 2_000_000_000, 224.08, 176.56),
    bench!("521.wrf_r", Fp, FP_STENCIL, 2_400_000_000, 404.21, 428.21),
    bench!("526.blender_r", Fp, FP_MIXED, 1_900_000_000, 256.54, 239.52),
    bench!("527.cam4_r", Fp, FP_STENCIL, 2_100_000_000, 315.77, 324.12),
    bench!(
        "538.imagick_r",
        Fp,
        FP_COMPUTE,
        2_300_000_000,
        401.88,
        318.06
    ),
    bench!("544.nab_r", Fp, FP_COMPUTE, 2_000_000_000, 315.25, 282.02),
    bench!(
        "549.fotonik3d_r",
        Fp,
        FP_STENCIL,
        2_200_000_000,
        418.76,
        415.46
    ),
    bench!("554.roms_r", Fp, FP_STENCIL, 2_000_000_000, 322.51, 279.39),
    bench!(
        "500.perlbench_r",
        Int,
        INT_BRANCHY,
        1_800_000_000,
        295.87511,
        253.71
    ),
    bench!(
        "502.gcc_r",
        Int,
        INT_BRANCHY,
        1_700_000_000,
        221.4159,
        218.91
    ),
    bench!("505.mcf_r", Int, INT_MEMORY, 1_600_000_000, 339.97, 297.68),
    bench!(
        "520.omnetpp_r",
        Int,
        INT_MEMORY,
        1_500_000_000,
        509.805,
        479.08
    ),
    bench!(
        "523.xalancbmk_r",
        Int,
        INT_MEMORY,
        1_700_000_000,
        287.7046,
        283.57
    ),
    bench!(
        "525.x264_r",
        Int,
        INT_CRYPTOISH,
        2_000_000_000,
        318.11903,
        290.76
    ),
    bench!(
        "531.deepsjeng_r",
        Int,
        INT_BRANCHY,
        1_800_000_000,
        306.148284,
        284.09
    ),
    bench!(
        "541.leela_r",
        Int,
        INT_BRANCHY,
        1_700_000_000,
        417.2528,
        383.03
    ),
    bench!(
        "548.exchange2_r",
        Int,
        INT_BRANCHY,
        1_900_000_000,
        345.38,
        248.6
    ),
    bench!(
        "557.xz_r",
        Int,
        INT_CRYPTOISH,
        1_800_000_000,
        387.71,
        373.41
    ),
];

/// Looks a benchmark up by (any unique substring of) its name.
#[must_use]
pub fn find(name: &str) -> Option<&'static Benchmark> {
    SUITE.iter().find(|b| b.name.contains(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_23_unique_benchmarks() {
        assert_eq!(SUITE.len(), 23);
        let mut names: Vec<_> = SUITE.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 23);
    }

    #[test]
    fn category_split_matches_spec2017() {
        let fp = SUITE.iter().filter(|b| b.category == Category::Fp).count();
        let int = SUITE.iter().filter(|b| b.category == Category::Int).count();
        assert_eq!(fp, 13);
        assert_eq!(int, 10);
    }

    #[test]
    fn anchors_match_table2_spot_checks() {
        let bwaves = find("bwaves").unwrap();
        assert!((bwaves.paper_base_rate - 628.59).abs() < 1e-9);
        assert!((bwaves.paper_peak_rate - 604.21).abs() < 1e-9);
        let xz = find("557.xz").unwrap();
        assert!((xz.paper_rate(Tuning::Base) - 387.71).abs() < 1e-9);
        assert!((xz.paper_rate(Tuning::Peak) - 373.41).abs() < 1e-9);
    }

    #[test]
    fn mixes_are_nonempty_and_weighted() {
        for b in &SUITE {
            assert!(!b.mix.is_empty(), "{}", b.name);
            assert!(b.mix.iter().map(|(_, w)| w).sum::<u32>() > 0, "{}", b.name);
            assert!(b.instructions > 1_000_000_000, "{}", b.name);
        }
    }

    #[test]
    fn peak_tuning_scales_work_inversely_with_rate() {
        let wrf = find("wrf").unwrap(); // peak rate higher than base
        assert!(wrf.instructions_for(Tuning::Peak) < wrf.instructions_for(Tuning::Base));
        let lbm = find("lbm").unwrap(); // peak rate lower than base
        assert!(lbm.instructions_for(Tuning::Peak) > lbm.instructions_for(Tuning::Base));
    }

    #[test]
    fn find_rejects_unknown() {
        assert!(find("999.nonexistent").is_none());
    }
}
