//! Exposure accounting: the characterized bounds the soak oracles hold
//! the countermeasure to, and an episode accountant for sampled runs.
//!
//! The paper's claim for the polling deployment is a *turnaround*
//! bound: from the instant an unsafe offset is written, detection
//! happens within one polling period, and the restore command lands on
//! the rail one VR command latency plus slew later. [`ExposureBound`]
//! derives those two numbers from a [`PollConfig`] and the VR physics
//! constants; [`ExposureAccountant`] turns a sampled run into unsafe
//! *episodes* whose dwell can be checked against them.
//!
//! The accountant distinguishes the **configured** state (offset
//! register × instantaneous frequency — what Algorithm 3 observes) from
//! the **rail** state (the slew-limited analog voltage). Under a
//! chained re-attack the rail can stay low across several
//! detect/restore rounds, so the sound rail-level invariant is not
//! "every rail episode is short" but "once the configured state goes
//! safe, the rail recovers within the VR constants" — which is exactly
//! what [`ExposureAccountant::worst_overhang`] measures.

use crate::deploy::Deployment;
use crate::poll::PollConfig;
use plugvolt_cpu::package::MAILBOX_SETTLE;
use plugvolt_des::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Slack added to every bound for sampling quantization and module
/// timer work (the soak engine samples at 10 µs).
pub const ORACLE_SLOP: SimDuration = SimDuration::from_micros(30);

/// Worst-case rail slew allowance: the deepest offset the mailbox
/// accepts is ~500 mV and the regulators slew at 8 mV/µs, so one
/// full-swing ramp takes at most ~63 µs.
pub const SLEW_ALLOWANCE: SimDuration = SimDuration::from_micros(64);

/// The characterized exposure bounds for one deployment level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExposureBound {
    /// Unsafe *configured* state must be detected and rewritten within
    /// this long of the offending write (Algorithm 3 turnaround).
    pub detection: SimDuration,
    /// Once the configured state is safe again, the *rail* must be back
    /// in the safe region within this long (VR latency + slew).
    pub recovery: SimDuration,
}

impl ExposureBound {
    /// The bound for the polling module at `cfg`'s period.
    #[must_use]
    pub fn for_polling(cfg: &PollConfig) -> ExposureBound {
        ExposureBound {
            detection: cfg.period + ORACLE_SLOP,
            recovery: MAILBOX_SETTLE + SLEW_ALLOWANCE + ORACLE_SLOP,
        }
    }

    /// The bound for a deployment level, if it promises one. `None` for
    /// the undefended baseline; the synchronous levels (microcode,
    /// hardware clamp, OCM disable) never admit an unsafe configured
    /// state at all, so their detection bound is zero.
    #[must_use]
    pub fn for_deployment(deployment: &Deployment) -> Option<ExposureBound> {
        match deployment {
            Deployment::None => None,
            Deployment::PollingModule(cfg) => Some(ExposureBound::for_polling(cfg)),
            Deployment::OcmDisable
            | Deployment::Microcode { .. }
            | Deployment::HardwareMsr { .. } => Some(ExposureBound {
                detection: SimDuration::ZERO,
                recovery: SimDuration::ZERO,
            }),
        }
    }
}

/// One contiguous run of unsafe samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Episode {
    /// First unsafe sample.
    pub start: SimTime,
    /// First safe sample after the run (episode close).
    pub end: SimTime,
    /// Last sample within the episode at which the *configured* state
    /// was still unsafe (equals `start` when the episode is pure rail
    /// lag with a safe configuration throughout).
    pub last_config_unsafe: SimTime,
}

impl Episode {
    /// Episode length.
    #[must_use]
    pub fn dwell(&self) -> SimDuration {
        self.end.saturating_duration_since(self.start)
    }

    /// Rail time beyond the last unsafe configured sample: how long the
    /// rail stayed unsafe after the countermeasure (or the adversary)
    /// made the configuration safe.
    #[must_use]
    pub fn overhang(&self) -> SimDuration {
        self.end.saturating_duration_since(self.last_config_unsafe)
    }
}

/// Folds a sampled `(rail unsafe?, config unsafe?)` stream into
/// episodes ([`Episode`] per rail excursion, dwell tracking for the
/// configured state).
#[derive(Debug, Clone, Default)]
pub struct ExposureAccountant {
    rail_open: Option<(SimTime, SimTime)>,
    config_open: Option<SimTime>,
    episodes: Vec<Episode>,
    config_dwell_max: SimDuration,
    total_unsafe: SimDuration,
    last_sample: Option<SimTime>,
}

impl ExposureAccountant {
    /// A fresh accountant.
    #[must_use]
    pub fn new() -> Self {
        ExposureAccountant::default()
    }

    /// Records one sample. `rail_unsafe` classifies the analog rail
    /// voltage against the map; `config_unsafe` classifies the
    /// configured offset register at the instantaneous frequency.
    pub fn record(&mut self, at: SimTime, rail_unsafe: bool, config_unsafe: bool) {
        if rail_unsafe {
            if let Some(prev) = self.last_sample {
                self.total_unsafe += at.saturating_duration_since(prev);
            }
        }
        self.last_sample = Some(at);
        match (&self.rail_open, rail_unsafe) {
            (None, true) => self.rail_open = Some((at, at)),
            (Some(_), false) => self.close_rail(at),
            _ => {}
        }
        if let Some((_, last_cfg)) = &mut self.rail_open {
            if config_unsafe {
                *last_cfg = at;
            }
        }
        match (self.config_open, config_unsafe) {
            (None, true) => self.config_open = Some(at),
            (Some(open), false) => {
                self.config_dwell_max = self
                    .config_dwell_max
                    .max(at.saturating_duration_since(open));
                self.config_open = None;
            }
            _ => {}
        }
    }

    fn close_rail(&mut self, at: SimTime) {
        if let Some((start, last_cfg)) = self.rail_open.take() {
            self.episodes.push(Episode {
                start,
                end: at,
                last_config_unsafe: last_cfg,
            });
        }
    }

    /// Closes any open episode at `at` (end of the observation window).
    pub fn finish(&mut self, at: SimTime) {
        self.close_rail(at);
        if let Some(open) = self.config_open.take() {
            self.config_dwell_max = self
                .config_dwell_max
                .max(at.saturating_duration_since(open));
        }
    }

    /// The closed rail episodes, in time order.
    #[must_use]
    pub fn episodes(&self) -> &[Episode] {
        &self.episodes
    }

    /// Longest contiguous unsafe *configured* dwell (write → rewrite).
    #[must_use]
    pub fn worst_config_dwell(&self) -> SimDuration {
        self.config_dwell_max
    }

    /// Longest rail overhang past a safe configuration (see module
    /// docs; this is the chained-attack-sound rail invariant).
    #[must_use]
    pub fn worst_overhang(&self) -> SimDuration {
        self.episodes
            .iter()
            .map(Episode::overhang)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Longest single rail episode (diagnostic; *not* bounded under
    /// chained re-attacks).
    #[must_use]
    pub fn worst_dwell(&self) -> SimDuration {
        self.episodes
            .iter()
            .map(Episode::dwell)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Total sampled unsafe rail time.
    #[must_use]
    pub fn total_unsafe(&self) -> SimDuration {
        self.total_unsafe
    }

    /// Checks this run against `bound`: the configured dwell against
    /// `detection`, the rail overhang against `recovery`. Returns the
    /// first violated quantity as `(observed, allowed)`.
    #[must_use]
    pub fn violates(&self, bound: &ExposureBound) -> Option<(SimDuration, SimDuration)> {
        if self.worst_config_dwell() > bound.detection {
            return Some((self.worst_config_dwell(), bound.detection));
        }
        if self.worst_overhang() > bound.recovery {
            return Some((self.worst_overhang(), bound.recovery));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn bounds_follow_the_poll_period() {
        let cfg = PollConfig::default();
        let b = ExposureBound::for_polling(&cfg);
        assert_eq!(b.detection, cfg.period + ORACLE_SLOP);
        assert!(b.recovery >= MAILBOX_SETTLE);
        let none = ExposureBound::for_deployment(&Deployment::None);
        assert!(none.is_none());
        let hw = ExposureBound::for_deployment(&Deployment::HardwareMsr { margin_mv: 5 })
            .expect("bounded");
        assert_eq!(hw.detection, SimDuration::ZERO);
    }

    #[test]
    fn accountant_folds_samples_into_episodes() {
        let mut a = ExposureAccountant::new();
        // Config goes unsafe at 10, rail follows at 30, restore write at
        // 50, rail recovers at 70.
        for us in (0..12).map(|i| i * 10) {
            let rail = (30..70).contains(&us);
            let cfg = (10..50).contains(&us);
            a.record(t(us), rail, cfg);
        }
        a.finish(t(120));
        assert_eq!(a.episodes().len(), 1);
        let ep = a.episodes()[0];
        assert_eq!(ep.start, t(30));
        assert_eq!(ep.end, t(70));
        assert_eq!(ep.last_config_unsafe, t(40));
        assert_eq!(ep.overhang(), SimDuration::from_micros(30));
        assert_eq!(a.worst_config_dwell(), SimDuration::from_micros(40));
        assert_eq!(a.total_unsafe(), SimDuration::from_micros(40));
    }

    #[test]
    fn chained_writes_extend_config_not_overhang() {
        let mut a = ExposureAccountant::new();
        // Two back-to-back config-unsafe pulses keep the rail down the
        // whole time; the overhang only counts past the *last* unsafe
        // configured sample.
        for us in (0..30).map(|i| i * 10) {
            let rail = (20..260).contains(&us);
            let cfg = (10..100).contains(&us) || (120..200).contains(&us);
            a.record(t(us), rail, cfg);
        }
        a.finish(t(300));
        assert_eq!(a.episodes().len(), 1);
        let ep = a.episodes()[0];
        assert_eq!(ep.dwell(), SimDuration::from_micros(240));
        assert_eq!(ep.overhang(), SimDuration::from_micros(70));
    }

    #[test]
    fn violation_reports_observed_vs_allowed() {
        let mut a = ExposureAccountant::new();
        for us in (0..50).map(|i| i * 10) {
            a.record(t(us), false, (0..300).contains(&us));
        }
        a.finish(t(500));
        let bound = ExposureBound {
            detection: SimDuration::from_micros(100),
            recovery: SimDuration::from_micros(100),
        };
        let (observed, allowed) = a.violates(&bound).expect("violates");
        assert_eq!(allowed, SimDuration::from_micros(100));
        assert!(observed > allowed);
        let loose = ExposureBound {
            detection: SimDuration::from_micros(400),
            recovery: SimDuration::from_micros(400),
        };
        assert!(a.violates(&loose).is_none());
    }
}
