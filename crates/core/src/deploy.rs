//! Countermeasure deployment levels (Sec. 4.3 and Sec. 5).
//!
//! The same characterization artifact can back three deployments:
//!
//! 1. **Kernel module** (Sec. 4.3) — the polling loop; software-only,
//!    deployable today, turnaround bounded by the polling period;
//! 2. **Microcode** (Sec. 5.1) — a sequencer patch that write-ignores
//!    unsafe `wrmsr 0x150` values against the maximal safe state;
//! 3. **Hardware MSR** (Sec. 5.2) — a `MSR_VOLTAGE_OFFSET_LIMIT` clamp
//!    with `DRAM_MIN_PWR` semantics.
//!
//! Plus the two baselines the paper compares against: Intel's
//! access-control fix (OCM disable, CVE-2019-11157) and no defense.

use crate::charmap::CharacterizationMap;
use crate::poll::{PollConfig, PollingModule, StatsHandle, MODULE_NAME};
use plugvolt_cpu::microcode::MicrocodeUpdate;
use plugvolt_des::time::SimDuration;
use plugvolt_kernel::machine::{Machine, MachineError};
use plugvolt_msr::offset_limit::VoltageOffsetLimit;
use serde::{Deserialize, Serialize};

/// Default guard margin applied on top of the characterized maximal safe
/// state for the microcode and hardware deployments.
pub const DEFAULT_MARGIN_MV: i32 = 5;

/// The defense configurations evaluated in the reproduction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Deployment {
    /// No countermeasure (the vulnerable baseline).
    None,
    /// Intel's CVE-2019-11157 response: overclocking mailbox disabled and
    /// attested — blocks benign DVFS along with the attacks.
    OcmDisable,
    /// The paper's polling kernel module.
    PollingModule(PollConfig),
    /// The paper's Sec. 5.1 microcode write-ignore patch.
    Microcode {
        /// Revision of the hypothetical patched microcode.
        revision: u32,
        /// Guard margin on the maximal safe state.
        margin_mv: i32,
    },
    /// The paper's Sec. 5.2 hardware clamp MSR.
    HardwareMsr {
        /// Guard margin on the maximal safe state.
        margin_mv: i32,
    },
}

impl Deployment {
    /// Short label used in reports and traces.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Deployment::None => "none",
            Deployment::OcmDisable => "ocm-disable",
            Deployment::PollingModule(_) => "polling-module",
            Deployment::Microcode { .. } => "microcode",
            Deployment::HardwareMsr { .. } => "hardware-msr",
        }
    }

    /// Whether benign (safe-state) undervolting keeps working under this
    /// deployment — the availability property the paper optimizes for.
    #[must_use]
    pub fn preserves_benign_dvfs(&self) -> bool {
        !matches!(self, Deployment::OcmDisable)
    }
}

/// A deployed countermeasure, with whatever observability it offers.
#[derive(Debug)]
pub struct Deployed {
    deployment: Deployment,
    /// Polling statistics, present for the kernel-module level.
    pub poll_stats: Option<StatsHandle>,
}

impl Deployed {
    /// The deployment that was installed.
    #[must_use]
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }
}

/// Installs `deployment` on the machine, using `map` for every level
/// that consumes the characterization.
///
/// # Errors
///
/// Propagates machine/module errors.
pub fn deploy(
    machine: &mut Machine,
    map: &CharacterizationMap,
    deployment: Deployment,
) -> Result<Deployed, MachineError> {
    let mut poll_stats = None;
    match &deployment {
        Deployment::None => {}
        Deployment::OcmDisable => {
            machine.cpu_mut().set_ocm_enabled(false);
        }
        Deployment::PollingModule(cfg) => {
            let (module, stats) = PollingModule::new(map.clone(), cfg.clone());
            machine.load_module(Box::new(module))?;
            poll_stats = Some(stats);
        }
        Deployment::Microcode {
            revision,
            margin_mv,
        } => {
            let bound = map.maximal_safe_offset_mv(*margin_mv).unwrap_or(0);
            // Ship the update the way a vendor would: packaged as a
            // checksummed container, validated by the loader against the
            // part's CPUID signature, then handed to the sequencer.
            let update = MicrocodeUpdate::maximal_safe_state(*revision, bound);
            let blob = plugvolt_cpu::ucode_blob::UpdateBlob::package(
                update,
                machine.cpu().spec().model,
                0x0607_2026, // release date, BCD mmddyyyy
            );
            machine
                .cpu_mut()
                .load_microcode_blob(&blob.encode())
                .expect("self-built blob for this part always validates");
        }
        Deployment::HardwareMsr { margin_mv } => {
            let bound = map.maximal_safe_offset_mv(*margin_mv).unwrap_or(0);
            machine
                .cpu_mut()
                .provision_offset_limit(VoltageOffsetLimit::new(bound));
        }
    }
    Ok(Deployed {
        deployment,
        poll_stats,
    })
}

/// Removes a previously deployed countermeasure (where removal is even
/// possible — the hardware clamp is fused and stays).
///
/// # Errors
///
/// Propagates machine errors.
pub fn undeploy(machine: &mut Machine, deployed: &Deployed) -> Result<(), MachineError> {
    match &deployed.deployment {
        Deployment::None => {}
        Deployment::OcmDisable => machine.cpu_mut().set_ocm_enabled(true),
        Deployment::PollingModule(_) => machine.unload_module(MODULE_NAME)?,
        Deployment::Microcode { .. } => {
            // Reverting microcode means loading the unpatched revision:
            // model as a no-clamp patch at the original revision.
            let rev = machine.cpu().spec().microcode;
            machine
                .cpu_mut()
                .load_microcode(MicrocodeUpdate::maximal_safe_state(rev, -1_000));
        }
        Deployment::HardwareMsr { .. } => {
            // Fused in hardware: not removable. Keep it.
        }
    }
    Ok(())
}

/// Worst-case countermeasure turnaround (write-to-neutralized) for a
/// deployment: the analytical counterpart of the ablation measurement.
/// `None` means the attack write is never neutralized.
#[must_use]
pub fn worst_case_turnaround(deployment: &Deployment) -> Option<SimDuration> {
    match deployment {
        Deployment::None => None,
        // Blocked synchronously at the write: zero exposure.
        Deployment::OcmDisable | Deployment::Microcode { .. } | Deployment::HardwareMsr { .. } => {
            Some(SimDuration::ZERO)
        }
        // One full polling period plus the per-core poll work.
        Deployment::PollingModule(cfg) => Some(cfg.period + SimDuration::from_micros(2)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charmap::FreqBand;
    use plugvolt_cpu::core::CoreId;
    use plugvolt_cpu::freq::FreqMhz;
    use plugvolt_cpu::model::CpuModel;
    use plugvolt_kernel::msr_dev::MsrDev;
    use plugvolt_msr::addr::Msr;
    use plugvolt_msr::oc_mailbox::{OcRequest, Plane};

    fn map() -> CharacterizationMap {
        let mut m = CharacterizationMap::new("demo", 0xf4, -300);
        m.insert_band(
            FreqMhz(1_800),
            FreqBand {
                fault_onset_mv: Some(-180),
                crash_mv: Some(-220),
            },
        );
        m.insert_band(
            FreqMhz(4_900),
            FreqBand {
                fault_onset_mv: Some(-120),
                crash_mv: Some(-160),
            },
        );
        m
    }

    fn attack_write(machine: &mut Machine, offset: i32) -> i32 {
        let dev = MsrDev::open(machine, CoreId(0)).expect("core 0 always exists");
        let req = OcRequest::write_offset(offset, Plane::Core).encode();
        let _ = dev.write(machine, Msr::OC_MAILBOX, req);
        machine.cpu().core_offset_mv()
    }

    #[test]
    fn none_leaves_machine_vulnerable() {
        let mut m = Machine::new(CpuModel::CometLake, 8);
        let d = deploy(&mut m, &map(), Deployment::None).expect("deploying nothing cannot fail");
        assert_eq!(d.deployment().label(), "none");
        assert_eq!(attack_write(&mut m, -250), -250);
    }

    #[test]
    fn ocm_disable_blocks_everything() {
        let mut m = Machine::new(CpuModel::CometLake, 8);
        let d = deploy(&mut m, &map(), Deployment::OcmDisable)
            .expect("OCM disable deploys on a fresh machine");
        assert!(!d.deployment().preserves_benign_dvfs());
        assert_eq!(attack_write(&mut m, -250), 0, "attack blocked");
        assert_eq!(attack_write(&mut m, -50), 0, "benign blocked too");
        undeploy(&mut m, &d).expect("matching undeploy succeeds");
        assert_eq!(attack_write(&mut m, -50), -50);
    }

    #[test]
    fn polling_module_deploys_and_undeploys() {
        let mut m = Machine::new(CpuModel::CometLake, 8);
        let d = deploy(
            &mut m,
            &map(),
            Deployment::PollingModule(PollConfig::default()),
        )
        .expect("polling module deploys on a fresh machine");
        assert!(m.is_module_loaded(MODULE_NAME));
        assert!(d.poll_stats.is_some());
        undeploy(&mut m, &d).expect("matching undeploy succeeds");
        assert!(!m.is_module_loaded(MODULE_NAME));
    }

    #[test]
    fn microcode_blocks_unsafe_allows_safe() {
        let mut m = Machine::new(CpuModel::CometLake, 8);
        deploy(
            &mut m,
            &map(),
            Deployment::Microcode {
                revision: 0xf5,
                margin_mv: 5,
            },
        )
        .expect("microcode update applies to a fresh machine");
        assert_eq!(m.cpu().microcode_revision(), 0xf5);
        // Maximal safe = −120 + 1 + 5 = −114.
        assert_eq!(attack_write(&mut m, -250), 0, "unsafe write-ignored");
        assert_eq!(attack_write(&mut m, -100), -100, "safe accepted");
    }

    #[test]
    fn hardware_msr_clamps() {
        let mut m = Machine::new(CpuModel::CometLake, 8);
        deploy(&mut m, &map(), Deployment::HardwareMsr { margin_mv: 5 })
            .expect("hardware clamp deploys on a fresh machine");
        let applied = attack_write(&mut m, -250);
        assert!(
            (-115..=-113).contains(&applied),
            "clamped to maximal safe, got {applied}"
        );
        assert_eq!(attack_write(&mut m, -60), -60, "safe accepted");
    }

    #[test]
    fn turnaround_ordering() {
        let poll = worst_case_turnaround(&Deployment::PollingModule(PollConfig::default()))
            .expect("bounded");
        let ucode = worst_case_turnaround(&Deployment::Microcode {
            revision: 1,
            margin_mv: 0,
        })
        .expect("bounded");
        let hw = worst_case_turnaround(&Deployment::HardwareMsr { margin_mv: 0 }).expect("bounded");
        assert_eq!(ucode, SimDuration::ZERO);
        assert_eq!(hw, SimDuration::ZERO);
        assert!(poll > ucode);
        assert!(poll < SimDuration::from_millis(1));
        assert_eq!(worst_case_turnaround(&Deployment::None), None);
    }

    #[test]
    fn labels_and_availability() {
        assert!(Deployment::None.preserves_benign_dvfs());
        assert!(Deployment::PollingModule(PollConfig::default()).preserves_benign_dvfs());
        assert!(Deployment::Microcode {
            revision: 1,
            margin_mv: 0
        }
        .preserves_benign_dvfs());
        assert!(Deployment::HardwareMsr { margin_mv: 0 }.preserves_benign_dvfs());
        assert!(!Deployment::OcmDisable.preserves_benign_dvfs());
    }
}
