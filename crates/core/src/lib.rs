//! # plugvolt
//!
//! Reference implementation of *Plug Your Volt: Protecting Intel
//! Processors against Dynamic Voltage Frequency Scaling based Fault
//! Attacks* (DAC 2024), over the simulated hardware/kernel substrates of
//! the companion crates.
//!
//! The paper's pipeline, end to end:
//!
//! 1. **[`mod@characterize`]** (S1, Algorithms 1–2) — a DVFS thread sweeps
//!    frequency × undervolt-offset pairs while an EXECUTE thread runs a
//!    million-`imul` loop, yielding a [`charmap::CharacterizationMap`] of
//!    safe/unsafe/crash states (the data behind Figures 2–4);
//! 2. **[`poll`]** (S2, Algorithm 3) — a kernel module polls MSRs
//!    0x198/0x150 per core and forces any unsafe state back to safe;
//! 3. **[`maximal`]** (Sec. 5) — the maximal safe state, distilled for
//!    microcode (write-ignore) and hardware-MSR (clamp) deployments;
//! 4. **[`deploy`]** — all defense levels plus the baselines the paper
//!    compares against (no defense, Intel's OCM disable).
//!
//! # Examples
//!
//! Characterize a Comet Lake coarsely, deploy the polling module, and
//! verify an attack write is neutralized:
//!
//! ```
//! use plugvolt::prelude::*;
//! use plugvolt_cpu::prelude::*;
//! use plugvolt_kernel::prelude::*;
//! use plugvolt_msr::prelude::*;
//! use plugvolt_des::time::SimDuration;
//!
//! let mut machine = Machine::new(CpuModel::CometLake, 7);
//! let run = characterize(&mut machine, &SweepConfig::coarse())?;
//! let deployed = deploy(
//!     &mut machine,
//!     &run.map,
//!     Deployment::PollingModule(PollConfig::default()),
//! )?;
//!
//! // Adversary pins the victim core fast (shallow unsafe band), then
//! // undervolts deep into the unsafe region…
//! let mut cpupower = CpuPower::new(&machine);
//! cpupower.frequency_set(&mut machine, CoreId(0), FreqMhz(4_900))?;
//! let dev = MsrDev::open(&machine, CoreId(0))?;
//! let attack = OcRequest::write_offset(-250, Plane::Core).encode();
//! dev.write(&mut machine, Msr::OC_MAILBOX, attack)?;
//! // …and within one polling period the module restores safety.
//! machine.advance(SimDuration::from_micros(250));
//! assert_eq!(machine.cpu().core_offset_mv(), 0);
//! assert!(deployed.poll_stats.unwrap().borrow().restores >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod characterize;
pub mod charmap;
pub mod deploy;
pub mod exposure;
pub mod maximal;
pub mod poll;
pub mod state;

pub use characterize::{
    characterize, characterize_sharded, CharacterizationRun, CharacterizeError, SweepConfig,
    SweepConfigError, SweepRecord,
};

/// Convenient glob-import of the commonly used names.
pub mod prelude {
    pub use crate::characterize::{
        characterize, characterize_sharded, CharacterizationRun, CharacterizeError, SweepConfig,
        SweepConfigError, SweepRecord,
    };
    pub use crate::charmap::{CharacterizationMap, FreqBand};
    pub use crate::deploy::{deploy, undeploy, worst_case_turnaround, Deployed, Deployment};
    pub use crate::exposure::{Episode, ExposureAccountant, ExposureBound};
    pub use crate::maximal::MaximalSafeState;
    pub use crate::poll::{PollConfig, PollStats, PollingModule, RestorePolicy, MODULE_NAME};
    pub use crate::state::{StateClass, SystemState};
}
