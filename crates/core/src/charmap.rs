//! The characterization map: per-frequency unsafe bands.
//!
//! The artifact produced by step **S1** (Sec. 4.2) and consumed by step
//! **S2** (the polling countermeasure): for every characterized frequency,
//! the first undervolt offset at which faults manifest and the offset at
//! which the machine crashes. Everything is conservative by construction —
//! uncharacterized depths and frequencies classify as unsafe.

use crate::state::StateClass;
use plugvolt_cpu::freq::FreqMhz;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The unsafe band observed at one frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FreqBand {
    /// Shallowest offset (mV, negative) where faults were observed, if
    /// any fault occurred within the sweep.
    pub fault_onset_mv: Option<i32>,
    /// Shallowest offset (mV, negative) where the machine crashed, if it
    /// crashed within the sweep.
    pub crash_mv: Option<i32>,
}

/// The safe/unsafe characterization of one machine (Figures 2–4).
///
/// # Examples
///
/// ```
/// use plugvolt::charmap::{CharacterizationMap, FreqBand};
/// use plugvolt::state::StateClass;
/// use plugvolt_cpu::freq::FreqMhz;
///
/// let mut map = CharacterizationMap::new("demo", 0xf0, -300);
/// map.insert_band(FreqMhz(2_000), FreqBand {
///     fault_onset_mv: Some(-180),
///     crash_mv: Some(-210),
/// });
/// assert_eq!(map.classify(FreqMhz(2_000), -100), StateClass::Safe);
/// assert_eq!(map.classify(FreqMhz(2_000), -180), StateClass::Unsafe);
/// assert_eq!(map.classify(FreqMhz(2_000), -250), StateClass::Crash);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CharacterizationMap {
    cpu_name: String,
    microcode: u32,
    /// Deepest offset the sweep covered (mV, negative). Depths below are
    /// uncharacterized and classify as unsafe.
    sweep_floor_mv: i32,
    bands: BTreeMap<u32, FreqBand>,
}

impl CharacterizationMap {
    /// Creates an empty map for a machine.
    ///
    /// # Panics
    ///
    /// Panics if `sweep_floor_mv` is not negative.
    #[must_use]
    pub fn new(cpu_name: impl Into<String>, microcode: u32, sweep_floor_mv: i32) -> Self {
        assert!(sweep_floor_mv < 0, "sweep floor must be a negative offset");
        CharacterizationMap {
            cpu_name: cpu_name.into(),
            microcode,
            sweep_floor_mv,
            bands: BTreeMap::new(),
        }
    }

    /// The characterized machine's name.
    #[must_use]
    pub fn cpu_name(&self) -> &str {
        &self.cpu_name
    }

    /// The microcode revision the characterization was taken under.
    #[must_use]
    pub fn microcode(&self) -> u32 {
        self.microcode
    }

    /// The deepest swept offset.
    #[must_use]
    pub fn sweep_floor_mv(&self) -> i32 {
        self.sweep_floor_mv
    }

    /// Records the band observed at `freq` (replacing any previous one).
    pub fn insert_band(&mut self, freq: FreqMhz, band: FreqBand) {
        self.bands.insert(freq.mhz(), band);
    }

    /// The band characterized at exactly `freq`, if any.
    #[must_use]
    pub fn band(&self, freq: FreqMhz) -> Option<FreqBand> {
        self.bands.get(&freq.mhz()).copied()
    }

    /// Number of characterized frequencies.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bands.len()
    }

    /// Whether no frequency has been characterized.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bands.is_empty()
    }

    /// Iterates `(frequency, band)` ascending by frequency.
    pub fn iter(&self) -> impl Iterator<Item = (FreqMhz, FreqBand)> + '_ {
        self.bands.iter().map(|(&f, &b)| (FreqMhz(f), b))
    }

    /// The band governing `freq`: the exact entry if characterized,
    /// otherwise the **more conservative** (shallower-onset) of the two
    /// neighbouring entries, so interpolation can never under-protect.
    #[must_use]
    pub fn governing_band(&self, freq: FreqMhz) -> Option<FreqBand> {
        if let Some(b) = self.band(freq) {
            return Some(b);
        }
        let below = self.bands.range(..freq.mhz()).next_back().map(|(_, &b)| b);
        let above = self.bands.range(freq.mhz()..).next().map(|(_, &b)| b);
        match (below, above) {
            (Some(a), Some(b)) => Some(FreqBand {
                fault_onset_mv: shallower(a.fault_onset_mv, b.fault_onset_mv),
                crash_mv: shallower(a.crash_mv, b.crash_mv),
            }),
            (Some(x), None) | (None, Some(x)) => Some(x),
            (None, None) => None,
        }
    }

    /// Classifies an observed state per the characterization.
    ///
    /// Conservative rules:
    /// - non-negative offsets are safe (the attack surface is undervolt);
    /// - offsets below the sweep floor are unsafe (uncharacterized);
    /// - with no characterization data at all, any undervolt is unsafe.
    #[must_use]
    pub fn classify(&self, freq: FreqMhz, offset_mv: i32) -> StateClass {
        if offset_mv >= 0 {
            return StateClass::Safe;
        }
        let Some(band) = self.governing_band(freq) else {
            return StateClass::Unsafe;
        };
        if let Some(crash) = band.crash_mv {
            if offset_mv <= crash {
                return StateClass::Crash;
            }
        }
        if let Some(onset) = band.fault_onset_mv {
            if offset_mv <= onset {
                return StateClass::Unsafe;
            }
        }
        if offset_mv < self.sweep_floor_mv {
            return StateClass::Unsafe;
        }
        StateClass::Safe
    }

    /// The **maximal safe state** (Sec. 5): the deepest offset that is
    /// safe at *every* characterized frequency, pulled up by
    /// `margin_mv` ≥ 0 of extra guard. `None` if nothing is
    /// characterized.
    ///
    /// When some frequency never faulted within the sweep, the floor
    /// bounds what can be certified.
    #[must_use]
    pub fn maximal_safe_offset_mv(&self, margin_mv: i32) -> Option<i32> {
        if self.bands.is_empty() {
            return None;
        }
        let deepest_certifiable = self
            .bands
            .values()
            .map(|b| match b.fault_onset_mv {
                // Shallowest faulting offset: one step above it is safe.
                Some(onset) => onset + 1,
                // No fault within the sweep: certify only to the floor
                // (or to just above the crash if one occurred earlier).
                None => match b.crash_mv {
                    Some(crash) => crash + 1,
                    None => self.sweep_floor_mv,
                },
            })
            .max()
            .expect("non-empty bands");
        Some((deepest_certifiable + margin_mv.max(0)).min(0))
    }
}

fn shallower(a: Option<i32>, b: Option<i32>) -> Option<i32> {
    // "Shallower" = closer to zero = larger (offsets are negative).
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> CharacterizationMap {
        let mut m = CharacterizationMap::new("test-cpu", 0xf4, -300);
        m.insert_band(
            FreqMhz(1_000),
            FreqBand {
                fault_onset_mv: Some(-250),
                crash_mv: Some(-270),
            },
        );
        m.insert_band(
            FreqMhz(2_000),
            FreqBand {
                fault_onset_mv: Some(-200),
                crash_mv: Some(-230),
            },
        );
        m.insert_band(
            FreqMhz(3_000),
            FreqBand {
                fault_onset_mv: Some(-140),
                crash_mv: Some(-180),
            },
        );
        m
    }

    #[test]
    fn exact_classification_regions() {
        let m = map();
        let f = FreqMhz(2_000);
        assert_eq!(m.classify(f, 0), StateClass::Safe);
        assert_eq!(m.classify(f, 50), StateClass::Safe);
        assert_eq!(m.classify(f, -199), StateClass::Safe);
        assert_eq!(m.classify(f, -200), StateClass::Unsafe);
        assert_eq!(m.classify(f, -229), StateClass::Unsafe);
        assert_eq!(m.classify(f, -230), StateClass::Crash);
        assert_eq!(m.classify(f, -300), StateClass::Crash);
    }

    #[test]
    fn interpolation_is_conservative() {
        let m = map();
        // 2.5 GHz sits between onsets −200 and −140: the governing band
        // must use the shallower −140.
        assert_eq!(m.classify(FreqMhz(2_500), -150), StateClass::Unsafe);
        assert_eq!(m.classify(FreqMhz(2_500), -139), StateClass::Safe);
    }

    #[test]
    fn out_of_range_frequencies_use_nearest() {
        let m = map();
        assert_eq!(m.classify(FreqMhz(500), -251), StateClass::Unsafe);
        assert_eq!(m.classify(FreqMhz(500), -249), StateClass::Safe);
        assert_eq!(m.classify(FreqMhz(3_600), -141), StateClass::Unsafe);
    }

    #[test]
    fn empty_map_is_paranoid() {
        let m = CharacterizationMap::new("x", 0, -300);
        assert!(m.is_empty());
        assert_eq!(m.classify(FreqMhz(1_000), -1), StateClass::Unsafe);
        assert_eq!(m.classify(FreqMhz(1_000), 0), StateClass::Safe);
        assert_eq!(m.maximal_safe_offset_mv(0), None);
    }

    #[test]
    fn below_sweep_floor_is_unsafe() {
        let mut m = CharacterizationMap::new("x", 0, -300);
        // A frequency that never faulted in the sweep.
        m.insert_band(FreqMhz(800), FreqBand::default());
        assert_eq!(m.classify(FreqMhz(800), -299), StateClass::Safe);
        assert_eq!(m.classify(FreqMhz(800), -301), StateClass::Unsafe);
    }

    #[test]
    fn maximal_safe_state_is_the_shallowest_onset() {
        let m = map();
        // Shallowest onset −140 ⇒ deepest certifiable −139.
        assert_eq!(m.maximal_safe_offset_mv(0), Some(-139));
        assert_eq!(m.maximal_safe_offset_mv(10), Some(-129));
        // Margin never pushes past zero.
        assert_eq!(m.maximal_safe_offset_mv(500), Some(0));
    }

    #[test]
    fn maximal_safe_state_with_unfaulted_band() {
        let mut m = map();
        m.insert_band(FreqMhz(400), FreqBand::default());
        // The unfaulted band certifies to the floor (−300), which is
        // deeper than −139, so the shallowest onset still governs.
        assert_eq!(m.maximal_safe_offset_mv(0), Some(-139));
    }

    #[test]
    fn classify_at_all_characterized_points_is_consistent() {
        let m = map();
        for (f, band) in m.iter() {
            if let Some(onset) = band.fault_onset_mv {
                assert_eq!(m.classify(f, onset + 1), StateClass::Safe);
                assert_ne!(m.classify(f, onset), StateClass::Safe);
            }
        }
    }

    #[test]
    fn serde_round_trip() {
        let m = map();
        let json = serde_json::to_string(&m).unwrap();
        let back: CharacterizationMap = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.cpu_name(), "test-cpu");
        assert_eq!(back.microcode(), 0xf4);
        assert_eq!(back.sweep_floor_mv(), -300);
        assert_eq!(back.len(), 3);
    }

    #[test]
    #[should_panic(expected = "negative offset")]
    fn positive_floor_rejected() {
        let _ = CharacterizationMap::new("x", 0, 10);
    }
}
