//! The maximal safe state (Sec. 5) and its vendor-level artifacts.
//!
//! The **maximal safe state** is the maximum negative voltage offset for
//! which a DVFS fault cannot be mounted at *any* frequency of the
//! system's spectrum. It is what makes the countermeasure deployable
//! below the kernel: a single scalar a microcode patch or a clamp MSR
//! can enforce without consulting the full per-frequency map.

use crate::charmap::CharacterizationMap;
use plugvolt_cpu::microcode::MicrocodeUpdate;
use plugvolt_msr::offset_limit::VoltageOffsetLimit;
use serde::{Deserialize, Serialize};

/// The distilled vendor artifact: one bound plus its provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaximalSafeState {
    /// The certified bound (mV, non-positive).
    pub offset_mv: i32,
    /// Guard margin that was applied on top of the raw characterization.
    pub margin_mv: i32,
    /// Name of the CPU the characterization came from.
    pub cpu_name: String,
    /// Microcode revision the characterization was taken under.
    pub microcode: u32,
}

impl MaximalSafeState {
    /// Distills the maximal safe state from a characterization map.
    ///
    /// Returns `None` for an empty map (nothing can be certified).
    #[must_use]
    pub fn from_map(map: &CharacterizationMap, margin_mv: i32) -> Option<Self> {
        let offset_mv = map.maximal_safe_offset_mv(margin_mv)?;
        Some(MaximalSafeState {
            offset_mv,
            margin_mv,
            cpu_name: map.cpu_name().to_owned(),
            microcode: map.microcode(),
        })
    }

    /// Builds the Sec. 5.1 microcode update enforcing this bound.
    #[must_use]
    pub fn microcode_update(&self, revision: u32) -> MicrocodeUpdate {
        MicrocodeUpdate::maximal_safe_state(revision, self.offset_mv)
    }

    /// Builds the Sec. 5.2 hardware clamp enforcing this bound.
    #[must_use]
    pub fn offset_limit(&self) -> VoltageOffsetLimit {
        VoltageOffsetLimit::new(self.offset_mv)
    }

    /// Whether a requested offset is within the certified safe region.
    #[must_use]
    pub fn permits(&self, offset_mv: i32) -> bool {
        offset_mv >= self.offset_mv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charmap::FreqBand;
    use plugvolt_cpu::freq::FreqMhz;
    use plugvolt_msr::oc_mailbox::{OcRequest, Plane};

    fn map() -> CharacterizationMap {
        let mut m = CharacterizationMap::new("demo-cpu", 0xf0, -300);
        m.insert_band(
            FreqMhz(1_000),
            FreqBand {
                fault_onset_mv: Some(-240),
                crash_mv: Some(-260),
            },
        );
        m.insert_band(
            FreqMhz(3_000),
            FreqBand {
                fault_onset_mv: Some(-130),
                crash_mv: Some(-170),
            },
        );
        m
    }

    #[test]
    fn distillation_uses_shallowest_onset() {
        let mss = MaximalSafeState::from_map(&map(), 0).unwrap();
        assert_eq!(mss.offset_mv, -129);
        assert_eq!(mss.cpu_name, "demo-cpu");
        assert_eq!(mss.microcode, 0xf0);
        let with_margin = MaximalSafeState::from_map(&map(), 9).unwrap();
        assert_eq!(with_margin.offset_mv, -120);
    }

    #[test]
    fn empty_map_certifies_nothing() {
        let empty = CharacterizationMap::new("x", 0, -300);
        assert!(MaximalSafeState::from_map(&empty, 0).is_none());
    }

    #[test]
    fn permits_is_a_half_line() {
        let mss = MaximalSafeState::from_map(&map(), 0).unwrap();
        assert!(mss.permits(0));
        assert!(mss.permits(-129));
        assert!(!mss.permits(-130));
        assert!(!mss.permits(-300));
    }

    #[test]
    fn artifacts_enforce_the_same_bound() {
        let mss = MaximalSafeState::from_map(&map(), 4).unwrap(); // −125
        assert_eq!(mss.offset_mv, -125);
        // The hardware clamp pulls a deep request up to the bound.
        let clamped = mss
            .offset_limit()
            .clamp(OcRequest::write_offset(-250, Plane::Core));
        assert_eq!(clamped.offset_mv(), -125);
        // The microcode update carries the same bound.
        let update = mss.microcode_update(0xf5);
        match update.kind {
            plugvolt_cpu::microcode::PatchKind::WriteIgnoreUnsafeMailbox { max_offset_mv } => {
                assert_eq!(max_offset_mv, -125);
            }
            other => panic!("unexpected patch {other:?}"),
        }
    }

    #[test]
    fn serde_round_trip() {
        let mss = MaximalSafeState::from_map(&map(), 0).unwrap();
        let json = serde_json::to_string(&mss).unwrap();
        let back: MaximalSafeState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, mss);
    }
}
