//! Step S1: empirical characterization of unsafe system states.
//!
//! A faithful implementation of the paper's two-thread framework
//! (Sec. 4.2, Algorithms 1 and 2):
//!
//! - the **DVFS thread** walks the cartesian product of core frequencies
//!   (0.1 GHz resolution via `cpupower`) and negative voltage offsets
//!   (written to MSR 0x150 through the userspace msr device, using the
//!   Algorithm 1 encoding);
//! - the **EXECUTE thread** runs a tight loop of one million `imul`
//!   iterations with varying 64-bit operands and reports incorrect
//!   products.
//!
//! Any pair observing faults joins the unsafe set; sweeping deeper at a
//! fixed frequency eventually crashes the machine, bounding the band
//! (the paper characterizes the unsafe width "until we observe a system
//! crash").

use crate::charmap::{CharacterizationMap, FreqBand};
use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::freq::FreqMhz;
use plugvolt_cpu::model::{CpuModel, CpuSpec};
use plugvolt_cpu::package::PackageError;
use plugvolt_des::rng::derive_seed;
use plugvolt_des::time::{SimDuration, SimTime};
use plugvolt_kernel::cpupower::CpuPower;
use plugvolt_kernel::machine::{Machine, MachineError};
use plugvolt_kernel::msr_dev::MsrDev;
use plugvolt_msr::addr::Msr;
use plugvolt_msr::oc_mailbox::{OcRequest, Plane};
use serde::{Deserialize, Serialize};

/// A degenerate [`SweepConfig`] rejected before any machine is touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepConfigError {
    /// `offset_start_mv` must be negative (the sweep tests undervolts).
    NonNegativeStart {
        /// The offending start offset.
        offset_start_mv: i32,
    },
    /// `offset_floor_mv` must be at or below `offset_start_mv`.
    FloorAboveStart {
        /// The configured start offset.
        offset_start_mv: i32,
        /// The configured floor offset.
        offset_floor_mv: i32,
    },
    /// `offset_step_mv` must be positive.
    NonPositiveOffsetStep {
        /// The offending step.
        offset_step_mv: i32,
    },
    /// `freq_step_mhz` must be positive.
    ZeroFreqStep,
    /// `imul_iters` must be positive (an empty EXECUTE loop observes
    /// nothing).
    ZeroImulIters,
}

impl std::fmt::Display for SweepConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepConfigError::NonNegativeStart { offset_start_mv } => write!(
                f,
                "offset_start_mv must be negative, got {offset_start_mv} mV"
            ),
            SweepConfigError::FloorAboveStart {
                offset_start_mv,
                offset_floor_mv,
            } => write!(
                f,
                "offset_floor_mv ({offset_floor_mv} mV) must be at or below \
                 offset_start_mv ({offset_start_mv} mV)"
            ),
            SweepConfigError::NonPositiveOffsetStep { offset_step_mv } => {
                write!(f, "offset_step_mv must be positive, got {offset_step_mv}")
            }
            SweepConfigError::ZeroFreqStep => write!(f, "freq_step_mhz must be positive"),
            SweepConfigError::ZeroImulIters => write!(f, "imul_iters must be positive"),
        }
    }
}

impl std::error::Error for SweepConfigError {}

/// Everything a characterization sweep can fail with: a rejected
/// configuration, or a machine error other than the expected
/// sweep-induced crashes.
#[derive(Debug)]
pub enum CharacterizeError {
    /// The sweep configuration is degenerate.
    Config(SweepConfigError),
    /// The machine failed outside the handled crash/reset cycle.
    Machine(MachineError),
}

impl std::fmt::Display for CharacterizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CharacterizeError::Config(e) => write!(f, "invalid sweep config: {e}"),
            CharacterizeError::Machine(e) => write!(f, "machine error during sweep: {e}"),
        }
    }
}

impl std::error::Error for CharacterizeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CharacterizeError::Config(e) => Some(e),
            CharacterizeError::Machine(e) => Some(e),
        }
    }
}

impl From<SweepConfigError> for CharacterizeError {
    fn from(e: SweepConfigError) -> Self {
        CharacterizeError::Config(e)
    }
}

impl From<MachineError> for CharacterizeError {
    fn from(e: MachineError) -> Self {
        CharacterizeError::Machine(e)
    }
}

impl From<PackageError> for CharacterizeError {
    fn from(e: PackageError) -> Self {
        CharacterizeError::Machine(MachineError::from(e))
    }
}

/// Configuration of the characterization sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Shallowest offset tested (mV, negative). Paper: −1.
    pub offset_start_mv: i32,
    /// Deepest offset tested (mV, negative). Paper: −300.
    pub offset_floor_mv: i32,
    /// Offset resolution in mV. Paper: 1.
    pub offset_step_mv: i32,
    /// Frequency resolution in MHz. Paper: 100 (0.1 GHz).
    pub freq_step_mhz: u32,
    /// EXECUTE-thread loop length. Paper: one million.
    pub imul_iters: u64,
    /// The core the EXECUTE thread is pinned to.
    pub execute_core: CoreId,
    /// Stop sweeping deeper at a frequency once it crashed (the paper
    /// stops a frequency's characterization at the crash).
    pub stop_after_crash: bool,
}

impl Default for SweepConfig {
    /// The paper's parameters: offsets −1…−300 mV at 1 mV, frequencies at
    /// 0.1 GHz resolution, one million `imul` iterations per point.
    fn default() -> Self {
        SweepConfig {
            offset_start_mv: -1,
            offset_floor_mv: -300,
            offset_step_mv: 1,
            freq_step_mhz: 100,
            imul_iters: 1_000_000,
            execute_core: CoreId(0),
            stop_after_crash: true,
        }
    }
}

impl SweepConfig {
    /// A coarse sweep for tests: 5 mV / 500 MHz resolution.
    #[must_use]
    pub fn coarse() -> Self {
        SweepConfig {
            offset_step_mv: 5,
            freq_step_mhz: 500,
            ..SweepConfig::default()
        }
    }

    /// Rejects degenerate configurations before a sweep starts.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), SweepConfigError> {
        if self.offset_start_mv >= 0 {
            return Err(SweepConfigError::NonNegativeStart {
                offset_start_mv: self.offset_start_mv,
            });
        }
        if self.offset_floor_mv > self.offset_start_mv {
            return Err(SweepConfigError::FloorAboveStart {
                offset_start_mv: self.offset_start_mv,
                offset_floor_mv: self.offset_floor_mv,
            });
        }
        if self.offset_step_mv <= 0 {
            return Err(SweepConfigError::NonPositiveOffsetStep {
                offset_step_mv: self.offset_step_mv,
            });
        }
        if self.freq_step_mhz == 0 {
            return Err(SweepConfigError::ZeroFreqStep);
        }
        if self.imul_iters == 0 {
            return Err(SweepConfigError::ZeroImulIters);
        }
        Ok(())
    }
}

/// One grid point of the sweep (a row of the Figures 2–4 raw data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepRecord {
    /// Tested frequency.
    pub freq: FreqMhz,
    /// Tested offset.
    pub offset_mv: i32,
    /// Faulted `imul` iterations (0 for a safe point).
    pub faults: u64,
    /// Whether the machine crashed at this point.
    pub crashed: bool,
}

/// The result of a full characterization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationRun {
    /// The safe/unsafe map distilled from the sweep.
    pub map: CharacterizationMap,
    /// Raw per-point records (the figure data).
    pub records: Vec<SweepRecord>,
    /// Number of machine crashes (and resets) incurred.
    pub crashes: u32,
    /// Simulated wall-clock time the sweep took.
    pub duration: SimDuration,
}

/// The frequencies a sweep visits for a spec: the table filtered to the
/// configured stride, always including the table maximum (the most
/// restrictive point of the spectrum — shallowest unsafe band — which a
/// sweep must never skip, whatever the stride).
fn sweep_frequencies(spec: &CpuSpec, cfg: &SweepConfig) -> Vec<FreqMhz> {
    let mut freqs: Vec<FreqMhz> = spec
        .freq_table
        .iter()
        .filter(|f| (f.mhz() - spec.freq_table.min().mhz()).is_multiple_of(cfg.freq_step_mhz))
        .collect();
    if freqs.last() != Some(&spec.freq_table.max()) {
        freqs.push(spec.freq_table.max());
    }
    freqs
}

/// What one frequency's offset sweep produced.
struct FreqSweep {
    band: FreqBand,
    records: Vec<SweepRecord>,
    crashes: u32,
}

/// Sweeps the offset axis at one pinned frequency (the inner loop of
/// Algorithm 2), leaving the machine at that frequency with a zero
/// offset.
fn sweep_one_frequency(
    machine: &mut Machine,
    cpupower: &mut CpuPower,
    dev: &MsrDev,
    cfg: &SweepConfig,
    freq: FreqMhz,
) -> Result<FreqSweep, MachineError> {
    // All cores to the test frequency: the core-plane rail follows
    // the *maximum* demand across cores, so pinning only the victim
    // core would characterize a higher rail voltage than a machine
    // whose other cores idle low actually sees (per-core states are
    // then always at least as safe as this all-core worst case).
    cpupower.frequency_set_all(machine, freq)?;
    settle(machine);
    let mut band = FreqBand::default();
    let mut records = Vec::new();
    let mut crashes = 0u32;
    let mut offset = cfg.offset_start_mv;
    while offset >= cfg.offset_floor_mv {
        match test_point(machine, dev, cfg, freq, offset) {
            Ok(faults) => {
                records.push(SweepRecord {
                    freq,
                    offset_mv: offset,
                    faults,
                    crashed: false,
                });
                if faults > 0 && band.fault_onset_mv.is_none() {
                    // The true onset lies somewhere in the last
                    // untested step; record the conservative
                    // (shallower) end so a coarse sweep never
                    // under-protects. At the paper's 1 mV resolution
                    // this is exact.
                    band.fault_onset_mv = Some((offset + cfg.offset_step_mv - 1).min(-1));
                }
            }
            Err(MachineError::Package(PackageError::Crashed)) => {
                records.push(SweepRecord {
                    freq,
                    offset_mv: offset,
                    faults: 0,
                    crashed: true,
                });
                if band.crash_mv.is_none() {
                    band.crash_mv = Some((offset + cfg.offset_step_mv - 1).min(-1));
                }
                crashes += 1;
                let now = machine.now();
                machine.cpu_mut().reset(now);
                settle(machine);
                cpupower.frequency_set_all(machine, freq)?;
                settle(machine);
                if cfg.stop_after_crash {
                    break;
                }
            }
            Err(e) => return Err(e),
        }
        offset -= cfg.offset_step_mv;
    }
    Ok(FreqSweep {
        band,
        records,
        crashes,
    })
}

/// Runs the paper's Algorithm 2 on a machine, returning the
/// characterization (the machine is left reset to nominal state).
///
/// # Errors
///
/// Returns [`CharacterizeError::Config`] for a degenerate `cfg` and
/// propagates machine errors other than the expected sweep-induced
/// crashes (which are handled by resetting, as on the real bench).
pub fn characterize(
    machine: &mut Machine,
    cfg: &SweepConfig,
) -> Result<CharacterizationRun, CharacterizeError> {
    characterize_observed(machine, cfg, &mut |_| {})
}

/// [`characterize`] with a progress observer: `observe` is invoked with
/// the machine after every completed frequency sweep, with the sim
/// clock advanced past that sweep. This is the streaming-telemetry
/// hook — a [`plugvolt_telemetry::StreamCursor`] polled here produces
/// sim-time-gated snapshot frames during long sweeps instead of one
/// profile dump at exit.
///
/// # Errors
///
/// Same as [`characterize`].
pub fn characterize_observed(
    machine: &mut Machine,
    cfg: &SweepConfig,
    observe: &mut dyn FnMut(&Machine),
) -> Result<CharacterizationRun, CharacterizeError> {
    cfg.validate()?;

    let started = machine.now();
    let mut cpupower = CpuPower::new(machine);
    let dev = MsrDev::open(machine, cfg.execute_core)?;
    let spec = machine.cpu().spec().clone();

    // Algorithm 2 lines 6–7: measure the normal frequency and offset so
    // each iteration can restore them.
    let original_freq = machine.cpu().core_freq(cfg.execute_core)?;
    let original_offset_mv = machine.cpu().core_offset_mv();

    let mut map = CharacterizationMap::new(spec.name, spec.microcode, cfg.offset_floor_mv);
    let mut records = Vec::new();
    let mut crashes = 0u32;

    for freq in sweep_frequencies(&spec, cfg) {
        let sweep = sweep_one_frequency(machine, &mut cpupower, &dev, cfg, freq)?;
        records.extend(sweep.records);
        crashes += sweep.crashes;
        map.insert_band(freq, sweep.band);
        observe(machine);
    }

    // Restore the original operating point (Algorithm 2 lines 13–14).
    cpupower.frequency_set_all(machine, original_freq)?;
    let restore = OcRequest::write_offset(original_offset_mv, Plane::Core).encode();
    dev.write(machine, Msr::OC_MAILBOX, restore)?;
    settle(machine);

    Ok(CharacterizationRun {
        map,
        records,
        crashes,
        duration: machine.now().saturating_duration_since(started),
    })
}

/// The seed-derivation label for one frequency shard of a sharded
/// characterization rooted at `root_seed`.
#[must_use]
pub fn shard_label(freq: FreqMhz) -> String {
    format!("characterize/f{}", freq.mhz())
}

/// Characterizes a model with the frequency axis sharded across
/// `workers` threads.
///
/// Per-frequency sweeps are independent units of work (the V0LTpwn
/// observation), so each shard boots its **own** fresh machine seeded
/// with `derive_seed(root_seed, "characterize/f<mhz>")` and sweeps the
/// offset axis at that single frequency; records merge back in
/// frequency order. Because every shard's stream depends only on
/// `(root_seed, frequency)` — never on which worker ran it or in what
/// order — the result is byte-identical for any worker count, including
/// the `workers == 1` sequential path (pinned by a tier-1 test).
///
/// The crash counter and the simulated duration are summed across
/// shards; the duration is therefore the total simulated machine-time
/// spent sweeping, not the wall-clock-parallel makespan.
///
/// Note this engine intentionally does **not** reproduce the records of
/// the single-machine [`characterize`] (there, one package RNG stream
/// spans all frequencies, which no frequency-parallel schedule can
/// replay); the *map* it distills agrees at the band level.
///
/// # Errors
///
/// Returns [`CharacterizeError::Config`] for a degenerate `cfg` and
/// propagates the first shard's machine error in frequency order.
pub fn characterize_sharded(
    model: CpuModel,
    root_seed: u64,
    cfg: &SweepConfig,
    workers: usize,
) -> Result<CharacterizationRun, CharacterizeError> {
    characterize_sharded_traced(model, root_seed, cfg, workers, None)
}

/// [`characterize_sharded`] with span tracing carried across the shard
/// boundary: each shard traces into its own machine's tracer, returns a
/// plain-data `SpanSnapshot`, and the snapshots merge into `tracer` in
/// frequency order — so the aggregated span profile, like the records,
/// is byte-identical for any worker count.
///
/// # Errors
///
/// Same contract as [`characterize_sharded`].
pub fn characterize_sharded_traced(
    model: CpuModel,
    root_seed: u64,
    cfg: &SweepConfig,
    workers: usize,
    tracer: Option<&plugvolt_telemetry::Tracer>,
) -> Result<CharacterizationRun, CharacterizeError> {
    cfg.validate()?;
    let spec = model.spec();
    let freqs = sweep_frequencies(&spec, cfg);
    let workers = workers.clamp(1, freqs.len().max(1));
    let trace = tracer.is_some_and(|t| t.is_enabled());

    // One result slot per frequency; workers claim shard indices from a
    // shared counter. `Machine` is not `Send`, so each shard constructs
    // (and drops) its machine entirely inside its worker thread — only
    // the plain-data sweep results (and span snapshots) cross back.
    type ShardResult =
        Result<(FreqSweep, SimDuration, plugvolt_telemetry::SpanSnapshot), MachineError>;
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<ShardResult>>> =
        freqs.iter().map(|_| std::sync::Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let _worker = scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&freq) = freqs.get(i) else {
                    break;
                };
                let result = sweep_shard(model, root_seed, cfg, freq, trace);
                *slots[i].lock().expect("shard slot poisoned") = Some(result);
            });
        }
    });

    let spec_for_map = model.spec();
    let mut map = CharacterizationMap::new(
        spec_for_map.name,
        spec_for_map.microcode,
        cfg.offset_floor_mv,
    );
    let mut records = Vec::new();
    let mut crashes = 0u32;
    let mut duration = SimDuration::ZERO;
    for (freq, slot) in freqs.iter().zip(slots) {
        let result = slot
            .into_inner()
            .expect("shard slot poisoned")
            .expect("every shard index was claimed by a worker");
        let (sweep, shard_duration, spans) = result.map_err(CharacterizeError::Machine)?;
        records.extend(sweep.records);
        crashes += sweep.crashes;
        duration += shard_duration;
        map.insert_band(*freq, sweep.band);
        if let Some(t) = tracer {
            // Frequency order, like the records: first-seen node
            // creation (and the aggregate totals) stay worker-count
            // independent.
            t.absorb(&spans);
        }
    }
    Ok(CharacterizationRun {
        map,
        records,
        crashes,
        duration,
    })
}

/// One shard of [`characterize_sharded`]: a fresh machine, one pinned
/// frequency, the full offset sweep.
fn sweep_shard(
    model: CpuModel,
    root_seed: u64,
    cfg: &SweepConfig,
    freq: FreqMhz,
    trace: bool,
) -> Result<(FreqSweep, SimDuration, plugvolt_telemetry::SpanSnapshot), MachineError> {
    // Shard machines are the engine's own: each frequency gets a fresh
    // boot from a derived labelled seed, which is what makes the merge
    // worker-count-independent. Constructing them here (not through the
    // bench Scenario layer) is the point, not an oversight.
    // plugvolt-lint: allow(machine-construction-discipline)
    let mut machine = Machine::new(model, derive_seed(root_seed, &shard_label(freq)));
    machine.telemetry().tracer().set_enabled(trace);
    let started = machine.now();
    let mut cpupower = CpuPower::new(&machine);
    let dev = MsrDev::open(&machine, cfg.execute_core)?;
    let sweep = sweep_one_frequency(&mut machine, &mut cpupower, &dev, cfg, freq)?;
    let duration = machine.now().saturating_duration_since(started);
    Ok((sweep, duration, machine.telemetry().tracer().snapshot()))
}

/// Tests one (frequency, offset) grid point: write the offset through
/// the mailbox, wait for the rail, run the EXECUTE thread, restore.
fn test_point(
    machine: &mut Machine,
    dev: &MsrDev,
    cfg: &SweepConfig,
    _freq: FreqMhz,
    offset_mv: i32,
) -> Result<u64, MachineError> {
    // Guards own tracer clones, so each phase closes when its block
    // ends (including the early `?` returns).
    let tracer = machine.telemetry().tracer().clone();
    let _point = tracer.span("characterize/point");

    let req = OcRequest::write_offset(offset_mv, Plane::Core).encode();
    {
        let _write = tracer.span("characterize/offset-write");
        dev.write(machine, Msr::OC_MAILBOX, req)?;
    }
    {
        let _settle = tracer.span("characterize/settle");
        settle(machine);
    }

    // EXECUTE thread: one million imuls with varying operands. It runs
    // in parallel with (and unblocked by) the DVFS thread; its wall time
    // advances the machine clock.
    let core = cfg.execute_core;
    let now = machine.now();
    let faults = {
        let _execute = tracer.span("characterize/execute");
        let faults_result = machine.cpu_mut().run_imul_loop(now, core, cfg.imul_iters);
        let freq_now = machine.cpu().core_freq(core).unwrap_or(FreqMhz(1_000));
        machine.advance(SimDuration::from_cycles(cfg.imul_iters, freq_now.mhz()));
        faults_result.map_err(MachineError::from)?
    };

    // Restore the offset before the next grid point.
    let restore = OcRequest::write_offset(0, Plane::Core).encode();
    {
        let _write = tracer.span("characterize/offset-write");
        dev.write(machine, Msr::OC_MAILBOX, restore)?;
    }
    {
        let _settle = tracer.span("characterize/settle");
        settle(machine);
    }
    Ok(faults)
}

fn settle(machine: &mut Machine) {
    let t = machine.cpu().rail_settles_at() + SimDuration::from_micros(1);
    if t > machine.now() {
        machine.advance_to(t);
    }
}

/// Convenience: the target the rail must reach before measuring.
#[must_use]
pub fn rail_settled_time(machine: &Machine) -> SimTime {
    machine.cpu().rail_settles_at() + SimDuration::from_micros(1)
}

/// One row of the instruction-class fault survey.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurveyRow {
    /// The instruction class.
    pub class: plugvolt_cpu::exec::InstrClass,
    /// Shallowest offset at which the class faults at `freq` (mV), if
    /// it faults within the sweep at all.
    pub fault_onset_mv: Option<i32>,
}

/// Surveys which instruction classes fault first under undervolting at
/// a fixed frequency — the analysis behind the paper's (and Minefield's
/// \[15\]) choice of `imul` for the EXECUTE thread: the deepest datapath
/// leaves the safe region at the shallowest offset.
///
/// # Errors
///
/// Propagates machine errors (sweep-induced crashes are handled).
pub fn instruction_survey(
    machine: &mut Machine,
    freq: FreqMhz,
    iters: u64,
) -> Result<Vec<SurveyRow>, MachineError> {
    use plugvolt_cpu::exec::InstrClass;
    let mut cpupower = CpuPower::new(machine);
    let dev = MsrDev::open(machine, CoreId(0))?;
    let mut rows = Vec::new();
    for class in InstrClass::ALL {
        cpupower.frequency_set_all(machine, freq)?;
        settle(machine);
        let mut onset = None;
        let mut offset = -1;
        while offset >= -400 {
            let req = OcRequest::write_offset(offset, Plane::Core).encode();
            // The cache plane must follow for Load to be comparable.
            let req_cache = OcRequest::write_offset(offset, Plane::Cache).encode();
            dev.write(machine, Msr::OC_MAILBOX, req)?;
            dev.write(machine, Msr::OC_MAILBOX, req_cache)?;
            settle(machine);
            let now = machine.now();
            match machine.cpu_mut().run_batch(now, CoreId(0), class, iters) {
                Ok(faults) if faults > 0 => {
                    onset = Some(offset);
                    break;
                }
                Ok(_) => {}
                Err(PackageError::Crashed) => {
                    let now = machine.now();
                    machine.cpu_mut().reset(now);
                    settle(machine);
                    break;
                }
                Err(e) => return Err(MachineError::Package(e)),
            }
            offset -= 2;
        }
        // Clean up between classes.
        for plane in [Plane::Core, Plane::Cache] {
            let restore = OcRequest::write_offset(0, plane).encode();
            dev.write(machine, Msr::OC_MAILBOX, restore)?;
        }
        settle(machine);
        rows.push(SurveyRow {
            class,
            fault_onset_mv: onset,
        });
    }
    Ok(rows)
}

/// An *analytic oracle* map computed straight from a model's physics,
/// without running the empirical sweep — useful for benches and tests
/// where the sweep's cost is not the subject. The paper's pipeline is
/// the empirical [`characterize`]; this function exists because the
/// simulator, unlike silicon, lets us query the ground truth.
#[must_use]
pub fn analytic_map(spec: &plugvolt_cpu::model::CpuSpec) -> CharacterizationMap {
    use plugvolt_circuit::timing::{TimingBudget, TimingState};
    let mul = spec.multiplier();
    let fm = spec.fault_model();
    let mut map = CharacterizationMap::new(spec.name, spec.microcode, -300);
    for f in spec.freq_table.iter() {
        let budget = TimingBudget::for_frequency_mhz(f.mhz(), spec.t_setup_ps, spec.t_eps_ps);
        let nominal = spec.nominal_voltage_mv(f);
        let mut band = FreqBand::default();
        for off in 1..=300 {
            let v = nominal - f64::from(off);
            if v < spec.absolute_min_voltage_mv() {
                band.crash_mv.get_or_insert(-off);
                break;
            }
            let slack = budget.slack_ps(mul.worst_path_delay_ps(v));
            // Onset where a million-iteration loop would observably fault.
            if band.fault_onset_mv.is_none() && fm.fault_probability(slack) * 1e6 >= 1.0 {
                band.fault_onset_mv = Some(-off);
            }
            if fm.classify(slack) == TimingState::Crash {
                band.crash_mv = Some(-off);
                break;
            }
        }
        map.insert_band(f, band);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateClass;
    use plugvolt_cpu::model::CpuModel;

    fn coarse_run(model: CpuModel) -> CharacterizationRun {
        let mut machine = Machine::new(model, 21);
        characterize(&mut machine, &SweepConfig::coarse()).expect("sweep completes")
    }

    #[test]
    fn sweep_finds_unsafe_bands_on_comet_lake() {
        let run = coarse_run(CpuModel::CometLake);
        assert!(!run.map.is_empty());
        // At least half the characterized frequencies show a fault onset
        // within the −300 mV sweep.
        let with_onset = run
            .map
            .iter()
            .filter(|(_, b)| b.fault_onset_mv.is_some())
            .count();
        assert!(with_onset * 2 >= run.map.len(), "onsets={with_onset}");
        assert!(run.crashes > 0, "sweep should hit crashes");
        assert!(!run.records.is_empty());
    }

    #[test]
    fn onset_offsets_shrink_with_frequency() {
        // The headline shape of Figures 2–4.
        let run = coarse_run(CpuModel::CometLake);
        let onsets: Vec<(u32, i32)> = run
            .map
            .iter()
            .filter_map(|(f, b)| b.fault_onset_mv.map(|o| (f.mhz(), o)))
            .collect();
        assert!(onsets.len() >= 3);
        let first = onsets.iter().min_by_key(|(f, _)| *f).unwrap();
        let last = onsets.iter().max_by_key(|(f, _)| *f).unwrap();
        assert!(
            last.1 > first.1 + 30,
            "onset at {} MHz = {} vs {} MHz = {}",
            first.0,
            first.1,
            last.0,
            last.1
        );
    }

    #[test]
    fn faults_precede_crash_in_each_band() {
        let run = coarse_run(CpuModel::SkyLake);
        for (f, band) in run.map.iter() {
            if let (Some(onset), Some(crash)) = (band.fault_onset_mv, band.crash_mv) {
                assert!(onset > crash, "{f}: onset {onset} not above crash {crash}");
            }
        }
    }

    #[test]
    fn nominal_state_classifies_safe_after_sweep() {
        let run = coarse_run(CpuModel::KabyLakeR);
        let spec = CpuModel::KabyLakeR.spec();
        for f in spec.freq_table.iter().step_by(8) {
            assert_eq!(run.map.classify(f, 0), StateClass::Safe, "{f}");
            assert_eq!(run.map.classify(f, -10), StateClass::Safe, "{f}");
        }
    }

    #[test]
    fn machine_is_restored_after_sweep() {
        let mut machine = Machine::new(CpuModel::CometLake, 21);
        let _ = characterize(&mut machine, &SweepConfig::coarse()).unwrap();
        assert!(!machine.cpu().is_crashed());
        assert_eq!(machine.cpu().core_offset_mv(), 0);
        let now = machine.now();
        let faults = machine
            .cpu_mut()
            .run_imul_loop(now, CoreId(0), 100_000)
            .unwrap();
        assert_eq!(faults, 0, "machine must be healthy post-sweep");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = coarse_run(CpuModel::SkyLake);
        let b = coarse_run(CpuModel::SkyLake);
        assert_eq!(a.map, b.map);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn survey_ranks_imul_most_faultable() {
        use plugvolt_cpu::exec::InstrClass;
        let mut machine = Machine::new(CpuModel::CometLake, 23);
        let rows = instruction_survey(&mut machine, FreqMhz(4_000), 1_000_000).unwrap();
        assert_eq!(rows.len(), InstrClass::ALL.len());
        let onset = |c: InstrClass| {
            rows.iter()
                .find(|r| r.class == c)
                .and_then(|r| r.fault_onset_mv)
        };
        let imul = onset(InstrClass::Imul).expect("imul faults in sweep");
        // imul leaves the safe region at the shallowest offset of all
        // classes that fault at all — the paper's stated reason for
        // using it in the EXECUTE thread.
        for class in InstrClass::ALL {
            if let Some(o) = onset(class) {
                assert!(imul >= o, "{class:?} at {o} shallower than imul {imul}");
            }
        }
        // And the shallow ALU class needs substantially deeper offsets
        // (or never faults before crash).
        if let Some(alu) = onset(InstrClass::AluAdd) {
            assert!(imul - alu > 20, "imul {imul} vs alu {alu}");
        }
    }

    #[test]
    fn maximal_safe_state_exists_and_is_negative() {
        let run = coarse_run(CpuModel::CometLake);
        let mss = run.map.maximal_safe_offset_mv(5).expect("characterized");
        assert!(mss < 0, "mss={mss}");
        assert!(mss > -300, "mss={mss}");
    }
}
