//! Step S1: empirical characterization of unsafe system states.
//!
//! A faithful implementation of the paper's two-thread framework
//! (Sec. 4.2, Algorithms 1 and 2):
//!
//! - the **DVFS thread** walks the cartesian product of core frequencies
//!   (0.1 GHz resolution via `cpupower`) and negative voltage offsets
//!   (written to MSR 0x150 through the userspace msr device, using the
//!   Algorithm 1 encoding);
//! - the **EXECUTE thread** runs a tight loop of one million `imul`
//!   iterations with varying 64-bit operands and reports incorrect
//!   products.
//!
//! Any pair observing faults joins the unsafe set; sweeping deeper at a
//! fixed frequency eventually crashes the machine, bounding the band
//! (the paper characterizes the unsafe width "until we observe a system
//! crash").

use crate::charmap::{CharacterizationMap, FreqBand};
use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::freq::FreqMhz;
use plugvolt_cpu::package::PackageError;
use plugvolt_des::time::{SimDuration, SimTime};
use plugvolt_kernel::cpupower::CpuPower;
use plugvolt_kernel::machine::{Machine, MachineError};
use plugvolt_kernel::msr_dev::MsrDev;
use plugvolt_msr::addr::Msr;
use plugvolt_msr::oc_mailbox::{OcRequest, Plane};
use serde::{Deserialize, Serialize};

/// Configuration of the characterization sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Shallowest offset tested (mV, negative). Paper: −1.
    pub offset_start_mv: i32,
    /// Deepest offset tested (mV, negative). Paper: −300.
    pub offset_floor_mv: i32,
    /// Offset resolution in mV. Paper: 1.
    pub offset_step_mv: i32,
    /// Frequency resolution in MHz. Paper: 100 (0.1 GHz).
    pub freq_step_mhz: u32,
    /// EXECUTE-thread loop length. Paper: one million.
    pub imul_iters: u64,
    /// The core the EXECUTE thread is pinned to.
    pub execute_core: CoreId,
    /// Stop sweeping deeper at a frequency once it crashed (the paper
    /// stops a frequency's characterization at the crash).
    pub stop_after_crash: bool,
}

impl Default for SweepConfig {
    /// The paper's parameters: offsets −1…−300 mV at 1 mV, frequencies at
    /// 0.1 GHz resolution, one million `imul` iterations per point.
    fn default() -> Self {
        SweepConfig {
            offset_start_mv: -1,
            offset_floor_mv: -300,
            offset_step_mv: 1,
            freq_step_mhz: 100,
            imul_iters: 1_000_000,
            execute_core: CoreId(0),
            stop_after_crash: true,
        }
    }
}

impl SweepConfig {
    /// A coarse sweep for tests: 5 mV / 500 MHz resolution.
    #[must_use]
    pub fn coarse() -> Self {
        SweepConfig {
            offset_step_mv: 5,
            freq_step_mhz: 500,
            ..SweepConfig::default()
        }
    }
}

/// One grid point of the sweep (a row of the Figures 2–4 raw data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepRecord {
    /// Tested frequency.
    pub freq: FreqMhz,
    /// Tested offset.
    pub offset_mv: i32,
    /// Faulted `imul` iterations (0 for a safe point).
    pub faults: u64,
    /// Whether the machine crashed at this point.
    pub crashed: bool,
}

/// The result of a full characterization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationRun {
    /// The safe/unsafe map distilled from the sweep.
    pub map: CharacterizationMap,
    /// Raw per-point records (the figure data).
    pub records: Vec<SweepRecord>,
    /// Number of machine crashes (and resets) incurred.
    pub crashes: u32,
    /// Simulated wall-clock time the sweep took.
    pub duration: SimDuration,
}

/// Runs the paper's Algorithm 2 on a machine, returning the
/// characterization (the machine is left reset to nominal state).
///
/// # Errors
///
/// Propagates machine errors other than the expected sweep-induced
/// crashes (which are handled by resetting, as on the real bench).
///
/// # Panics
///
/// Panics if `cfg` is degenerate (non-negative offsets, zero steps).
pub fn characterize(
    machine: &mut Machine,
    cfg: &SweepConfig,
) -> Result<CharacterizationRun, MachineError> {
    assert!(cfg.offset_start_mv < 0 && cfg.offset_floor_mv <= cfg.offset_start_mv);
    assert!(cfg.offset_step_mv > 0 && cfg.freq_step_mhz > 0);
    assert!(cfg.imul_iters > 0);

    let started = machine.now();
    let mut cpupower = CpuPower::new(machine);
    let dev = MsrDev::open(machine, cfg.execute_core)?;
    let spec = machine.cpu().spec().clone();

    // Algorithm 2 lines 6–7: measure the normal frequency and offset so
    // each iteration can restore them.
    let original_freq = machine.cpu().core_freq(cfg.execute_core)?;
    let original_offset_mv = machine.cpu().core_offset_mv();

    let mut map = CharacterizationMap::new(spec.name, spec.microcode, cfg.offset_floor_mv);
    let mut records = Vec::new();
    let mut crashes = 0u32;

    let mut freqs: Vec<FreqMhz> = spec
        .freq_table
        .iter()
        .filter(|f| (f.mhz() - spec.freq_table.min().mhz()).is_multiple_of(cfg.freq_step_mhz))
        .collect();
    // The table maximum is the most restrictive point of the spectrum
    // (shallowest unsafe band); a sweep must never skip it, whatever the
    // stride.
    if freqs.last() != Some(&spec.freq_table.max()) {
        freqs.push(spec.freq_table.max());
    }

    for &freq in &freqs {
        // All cores to the test frequency: the core-plane rail follows
        // the *maximum* demand across cores, so pinning only the victim
        // core would characterize a higher rail voltage than a machine
        // whose other cores idle low actually sees (per-core states are
        // then always at least as safe as this all-core worst case).
        cpupower.frequency_set_all(machine, freq)?;
        settle(machine);
        let mut band = FreqBand::default();
        let mut offset = cfg.offset_start_mv;
        while offset >= cfg.offset_floor_mv {
            match test_point(machine, &dev, cfg, freq, offset) {
                Ok(faults) => {
                    records.push(SweepRecord {
                        freq,
                        offset_mv: offset,
                        faults,
                        crashed: false,
                    });
                    if faults > 0 && band.fault_onset_mv.is_none() {
                        // The true onset lies somewhere in the last
                        // untested step; record the conservative
                        // (shallower) end so a coarse sweep never
                        // under-protects. At the paper's 1 mV resolution
                        // this is exact.
                        band.fault_onset_mv = Some((offset + cfg.offset_step_mv - 1).min(-1));
                    }
                }
                Err(MachineError::Package(PackageError::Crashed)) => {
                    records.push(SweepRecord {
                        freq,
                        offset_mv: offset,
                        faults: 0,
                        crashed: true,
                    });
                    if band.crash_mv.is_none() {
                        band.crash_mv = Some((offset + cfg.offset_step_mv - 1).min(-1));
                    }
                    crashes += 1;
                    let now = machine.now();
                    machine.cpu_mut().reset(now);
                    settle(machine);
                    cpupower.frequency_set_all(machine, freq)?;
                    settle(machine);
                    if cfg.stop_after_crash {
                        break;
                    }
                }
                Err(e) => return Err(e),
            }
            offset -= cfg.offset_step_mv;
        }
        map.insert_band(freq, band);
    }

    // Restore the original operating point (Algorithm 2 lines 13–14).
    cpupower.frequency_set_all(machine, original_freq)?;
    let restore = OcRequest::write_offset(original_offset_mv, Plane::Core).encode();
    dev.write(machine, Msr::OC_MAILBOX, restore)?;
    settle(machine);

    Ok(CharacterizationRun {
        map,
        records,
        crashes,
        duration: machine.now().saturating_duration_since(started),
    })
}

/// Tests one (frequency, offset) grid point: write the offset through
/// the mailbox, wait for the rail, run the EXECUTE thread, restore.
fn test_point(
    machine: &mut Machine,
    dev: &MsrDev,
    cfg: &SweepConfig,
    _freq: FreqMhz,
    offset_mv: i32,
) -> Result<u64, MachineError> {
    let req = OcRequest::write_offset(offset_mv, Plane::Core).encode();
    dev.write(machine, Msr::OC_MAILBOX, req)?;
    settle(machine);

    // EXECUTE thread: one million imuls with varying operands. It runs
    // in parallel with (and unblocked by) the DVFS thread; its wall time
    // advances the machine clock.
    let core = cfg.execute_core;
    let now = machine.now();
    let faults_result = machine.cpu_mut().run_imul_loop(now, core, cfg.imul_iters);
    let freq_now = machine.cpu().core_freq(core).unwrap_or(FreqMhz(1_000));
    machine.advance(SimDuration::from_cycles(cfg.imul_iters, freq_now.mhz()));
    let faults = faults_result.map_err(MachineError::from)?;

    // Restore the offset before the next grid point.
    let restore = OcRequest::write_offset(0, Plane::Core).encode();
    dev.write(machine, Msr::OC_MAILBOX, restore)?;
    settle(machine);
    Ok(faults)
}

fn settle(machine: &mut Machine) {
    let t = machine.cpu().rail_settles_at() + SimDuration::from_micros(1);
    if t > machine.now() {
        machine.advance_to(t);
    }
}

/// Convenience: the target the rail must reach before measuring.
#[must_use]
pub fn rail_settled_time(machine: &Machine) -> SimTime {
    machine.cpu().rail_settles_at() + SimDuration::from_micros(1)
}

/// One row of the instruction-class fault survey.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurveyRow {
    /// The instruction class.
    pub class: plugvolt_cpu::exec::InstrClass,
    /// Shallowest offset at which the class faults at `freq` (mV), if
    /// it faults within the sweep at all.
    pub fault_onset_mv: Option<i32>,
}

/// Surveys which instruction classes fault first under undervolting at
/// a fixed frequency — the analysis behind the paper's (and Minefield's
/// \[15\]) choice of `imul` for the EXECUTE thread: the deepest datapath
/// leaves the safe region at the shallowest offset.
///
/// # Errors
///
/// Propagates machine errors (sweep-induced crashes are handled).
pub fn instruction_survey(
    machine: &mut Machine,
    freq: FreqMhz,
    iters: u64,
) -> Result<Vec<SurveyRow>, MachineError> {
    use plugvolt_cpu::exec::InstrClass;
    let mut cpupower = CpuPower::new(machine);
    let dev = MsrDev::open(machine, CoreId(0))?;
    let mut rows = Vec::new();
    for class in InstrClass::ALL {
        cpupower.frequency_set_all(machine, freq)?;
        settle(machine);
        let mut onset = None;
        let mut offset = -1;
        while offset >= -400 {
            let req = OcRequest::write_offset(offset, Plane::Core).encode();
            // The cache plane must follow for Load to be comparable.
            let req_cache = OcRequest::write_offset(offset, Plane::Cache).encode();
            dev.write(machine, Msr::OC_MAILBOX, req)?;
            dev.write(machine, Msr::OC_MAILBOX, req_cache)?;
            settle(machine);
            let now = machine.now();
            match machine.cpu_mut().run_batch(now, CoreId(0), class, iters) {
                Ok(faults) if faults > 0 => {
                    onset = Some(offset);
                    break;
                }
                Ok(_) => {}
                Err(PackageError::Crashed) => {
                    let now = machine.now();
                    machine.cpu_mut().reset(now);
                    settle(machine);
                    break;
                }
                Err(e) => return Err(MachineError::Package(e)),
            }
            offset -= 2;
        }
        // Clean up between classes.
        for plane in [Plane::Core, Plane::Cache] {
            let restore = OcRequest::write_offset(0, plane).encode();
            dev.write(machine, Msr::OC_MAILBOX, restore)?;
        }
        settle(machine);
        rows.push(SurveyRow {
            class,
            fault_onset_mv: onset,
        });
    }
    Ok(rows)
}

/// An *analytic oracle* map computed straight from a model's physics,
/// without running the empirical sweep — useful for benches and tests
/// where the sweep's cost is not the subject. The paper's pipeline is
/// the empirical [`characterize`]; this function exists because the
/// simulator, unlike silicon, lets us query the ground truth.
#[must_use]
pub fn analytic_map(spec: &plugvolt_cpu::model::CpuSpec) -> CharacterizationMap {
    use plugvolt_circuit::timing::{TimingBudget, TimingState};
    let mul = spec.multiplier();
    let fm = spec.fault_model();
    let mut map = CharacterizationMap::new(spec.name, spec.microcode, -300);
    for f in spec.freq_table.iter() {
        let budget = TimingBudget::for_frequency_mhz(f.mhz(), spec.t_setup_ps, spec.t_eps_ps);
        let nominal = spec.nominal_voltage_mv(f);
        let mut band = FreqBand::default();
        for off in 1..=300 {
            let v = nominal - f64::from(off);
            if v < spec.absolute_min_voltage_mv() {
                band.crash_mv.get_or_insert(-off);
                break;
            }
            let slack = budget.slack_ps(mul.worst_path_delay_ps(v));
            // Onset where a million-iteration loop would observably fault.
            if band.fault_onset_mv.is_none() && fm.fault_probability(slack) * 1e6 >= 1.0 {
                band.fault_onset_mv = Some(-off);
            }
            if fm.classify(slack) == TimingState::Crash {
                band.crash_mv = Some(-off);
                break;
            }
        }
        map.insert_band(f, band);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateClass;
    use plugvolt_cpu::model::CpuModel;

    fn coarse_run(model: CpuModel) -> CharacterizationRun {
        let mut machine = Machine::new(model, 21);
        characterize(&mut machine, &SweepConfig::coarse()).expect("sweep completes")
    }

    #[test]
    fn sweep_finds_unsafe_bands_on_comet_lake() {
        let run = coarse_run(CpuModel::CometLake);
        assert!(!run.map.is_empty());
        // At least half the characterized frequencies show a fault onset
        // within the −300 mV sweep.
        let with_onset = run
            .map
            .iter()
            .filter(|(_, b)| b.fault_onset_mv.is_some())
            .count();
        assert!(with_onset * 2 >= run.map.len(), "onsets={with_onset}");
        assert!(run.crashes > 0, "sweep should hit crashes");
        assert!(!run.records.is_empty());
    }

    #[test]
    fn onset_offsets_shrink_with_frequency() {
        // The headline shape of Figures 2–4.
        let run = coarse_run(CpuModel::CometLake);
        let onsets: Vec<(u32, i32)> = run
            .map
            .iter()
            .filter_map(|(f, b)| b.fault_onset_mv.map(|o| (f.mhz(), o)))
            .collect();
        assert!(onsets.len() >= 3);
        let first = onsets.iter().min_by_key(|(f, _)| *f).unwrap();
        let last = onsets.iter().max_by_key(|(f, _)| *f).unwrap();
        assert!(
            last.1 > first.1 + 30,
            "onset at {} MHz = {} vs {} MHz = {}",
            first.0,
            first.1,
            last.0,
            last.1
        );
    }

    #[test]
    fn faults_precede_crash_in_each_band() {
        let run = coarse_run(CpuModel::SkyLake);
        for (f, band) in run.map.iter() {
            if let (Some(onset), Some(crash)) = (band.fault_onset_mv, band.crash_mv) {
                assert!(onset > crash, "{f}: onset {onset} not above crash {crash}");
            }
        }
    }

    #[test]
    fn nominal_state_classifies_safe_after_sweep() {
        let run = coarse_run(CpuModel::KabyLakeR);
        let spec = CpuModel::KabyLakeR.spec();
        for f in spec.freq_table.iter().step_by(8) {
            assert_eq!(run.map.classify(f, 0), StateClass::Safe, "{f}");
            assert_eq!(run.map.classify(f, -10), StateClass::Safe, "{f}");
        }
    }

    #[test]
    fn machine_is_restored_after_sweep() {
        let mut machine = Machine::new(CpuModel::CometLake, 21);
        let _ = characterize(&mut machine, &SweepConfig::coarse()).unwrap();
        assert!(!machine.cpu().is_crashed());
        assert_eq!(machine.cpu().core_offset_mv(), 0);
        let now = machine.now();
        let faults = machine
            .cpu_mut()
            .run_imul_loop(now, CoreId(0), 100_000)
            .unwrap();
        assert_eq!(faults, 0, "machine must be healthy post-sweep");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = coarse_run(CpuModel::SkyLake);
        let b = coarse_run(CpuModel::SkyLake);
        assert_eq!(a.map, b.map);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn survey_ranks_imul_most_faultable() {
        use plugvolt_cpu::exec::InstrClass;
        let mut machine = Machine::new(CpuModel::CometLake, 23);
        let rows = instruction_survey(&mut machine, FreqMhz(4_000), 1_000_000).unwrap();
        assert_eq!(rows.len(), InstrClass::ALL.len());
        let onset = |c: InstrClass| {
            rows.iter()
                .find(|r| r.class == c)
                .and_then(|r| r.fault_onset_mv)
        };
        let imul = onset(InstrClass::Imul).expect("imul faults in sweep");
        // imul leaves the safe region at the shallowest offset of all
        // classes that fault at all — the paper's stated reason for
        // using it in the EXECUTE thread.
        for class in InstrClass::ALL {
            if let Some(o) = onset(class) {
                assert!(imul >= o, "{class:?} at {o} shallower than imul {imul}");
            }
        }
        // And the shallow ALU class needs substantially deeper offsets
        // (or never faults before crash).
        if let Some(alu) = onset(InstrClass::AluAdd) {
            assert!(imul - alu > 20, "imul {imul} vs alu {alu}");
        }
    }

    #[test]
    fn maximal_safe_state_exists_and_is_negative() {
        let run = coarse_run(CpuModel::CometLake);
        let mss = run.map.maximal_safe_offset_mv(5).expect("characterized");
        assert!(mss < 0, "mss={mss}");
        assert!(mss > -300, "mss={mss}");
    }
}
