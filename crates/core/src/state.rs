//! Safe/unsafe system states — the paper's central abstraction (Sec. 3).
//!
//! A system *state* is an observed (core frequency, core voltage offset)
//! pair; the characterization of Sec. 4.2 classifies each state by what
//! the paper's EXECUTE thread experiences there.

use plugvolt_cpu::freq::FreqMhz;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Empirical classification of a (frequency, offset) system state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StateClass {
    /// No faults observed: Eq. 1 holds with margin everywhere.
    Safe,
    /// Faults observed (Eq. 3 territory): a DVFS attack can fire here.
    Unsafe,
    /// The machine locks up or resets.
    Crash,
}

impl StateClass {
    /// Whether a system in this state needs countermeasure intervention.
    #[must_use]
    pub fn needs_intervention(self) -> bool {
        !matches!(self, StateClass::Safe)
    }
}

impl fmt::Display for StateClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StateClass::Safe => "safe",
            StateClass::Unsafe => "unsafe",
            StateClass::Crash => "crash",
        };
        f.write_str(s)
    }
}

/// One observed system state: what the countermeasure's polling loop
/// reads from MSRs 0x198 (frequency) and 0x150 (offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SystemState {
    /// Core frequency from `IA32_PERF_STATUS`.
    pub freq: FreqMhz,
    /// Core-plane voltage offset from the OC mailbox, in mV (≤ 0 under
    /// the attacks considered).
    pub offset_mv: i32,
}

impl fmt::Display for SystemState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {} mV)", self.freq, self.offset_mv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervention_policy() {
        assert!(!StateClass::Safe.needs_intervention());
        assert!(StateClass::Unsafe.needs_intervention());
        assert!(StateClass::Crash.needs_intervention());
    }

    #[test]
    fn display() {
        assert_eq!(StateClass::Unsafe.to_string(), "unsafe");
        let s = SystemState {
            freq: FreqMhz(2_000),
            offset_mv: -150,
        };
        assert_eq!(s.to_string(), "(2 GHz, -150 mV)");
    }
}
