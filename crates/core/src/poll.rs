//! Step S2: the polling countermeasure kernel module (Algorithm 3).
//!
//! The deployed module polls, per core, MSR `0x198` (frequency) and MSR
//! `0x150` (voltage offset). If the observed pair is in the characterized
//! unsafe set, it immediately rewrites `0x150` to force the system back
//! into a safe state. Because an accepted mailbox undervolt only reaches
//! the rail after the VR command latency, a polling period shorter than
//! that latency removes the unsafe target before the voltage ever moves —
//! which is why the paper observes *complete* fault elimination.
//!
//! The module runs off per-CPU timers: each tick costs the polled core a
//! timer-interrupt entry plus two local `rdmsr`s and the set lookup. That
//! stolen time is the entire source of the Table 2 overhead (0.28 % in
//! the paper).

use crate::charmap::CharacterizationMap;
use crate::state::{StateClass, SystemState};
use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::freq::FreqMhz;
use plugvolt_des::stats::Summary;
use plugvolt_des::time::{SimDuration, SimTime};
use plugvolt_des::trace::TraceLevel;
use plugvolt_kernel::machine::{KernelModule, ModuleCtx};
use plugvolt_msr::addr::Msr;
use plugvolt_msr::oc_mailbox::{OcRequest, Plane};
use plugvolt_msr::perf_status::PerfStatus;
use plugvolt_telemetry::{HistogramSpec, MetricKey, TelemetryEvent};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// The module name shown in `lsmod` and the attestation report.
pub const MODULE_NAME: &str = "plugvolt-poll";

/// What the module writes to 0x150 when it finds an unsafe state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RestorePolicy {
    /// Clear the offset entirely (back to the fused V/F curve).
    ZeroOffset,
    /// Clamp to the maximal safe state with the given guard margin,
    /// preserving as much benign undervolt as possible.
    MaximalSafe {
        /// Extra guard in mV on top of the characterized bound.
        margin_mv: i32,
    },
}

/// Configuration of the polling module.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PollConfig {
    /// Polling period. The default (200 µs) sits well inside the VR
    /// command latency, giving complete prevention at ≈ 0.3 % overhead.
    pub period: SimDuration,
    /// Restore action on detection.
    pub restore: RestorePolicy,
    /// Timer-interrupt entry/exit overhead charged per tick per core.
    pub timer_overhead: SimDuration,
    /// Also drop the core frequency on detection (`IA32_PERF_CTL`), to
    /// the fastest point at which the *observed* offset is safe.
    ///
    /// Rationale: a 0x150 restore only takes effect after the mailbox/VR
    /// command latency (hundreds of µs), but a frequency-side attacker
    /// (CLKSCREW-style) flips the (f, V) pair into unsafety through the
    /// *fast* P-state path. Lowering the frequency restores the Eq. 1
    /// budget within microseconds and closes that window; the governor
    /// re-raises the frequency afterwards.
    pub frequency_fallback: bool,
    /// Guard margin in mV: states within this much of the characterized
    /// unsafe band are treated as unsafe.
    ///
    /// Rationale: the empirical onset certifies "no faults observed in a
    /// million iterations", i.e. a per-operation fault probability below
    /// 1e-6 -- but a Bellcore-style attacker needs only *one* fault in
    /// an arbitrarily long campaign parked just above the onset. A few
    /// millivolts of guard put every permitted state astronomically far
    /// down the fault-probability curve.
    pub guard_margin_mv: i32,
    /// Voltage planes the module watches.
    ///
    /// The paper's Algorithm 3 reads MSR 0x150 once per core — the
    /// mailbox *response register*, which reflects the last command's
    /// plane (core at boot). With the default `[Core]` the module issues
    /// exactly that read and acts on whatever plane the response holds.
    /// Adding `Plane::Cache` makes the module issue explicit per-plane
    /// read commands each tick (≈ 2 extra MSR accesses per plane per
    /// core), closing cache-plane undervolting at a measurable overhead
    /// cost — see the plane ablation in EXPERIMENTS.md.
    pub planes: Vec<Plane>,
    /// Skip cores parked in a C-state. An idle core retires no
    /// instructions and therefore cannot be faulted; it gets polled on
    /// the first tick after it wakes (bounded by one period, the same
    /// bound as detection itself). Saves the per-core poll cost on idle
    /// machines.
    pub skip_idle_cores: bool,
}

impl Default for PollConfig {
    fn default() -> Self {
        PollConfig {
            period: SimDuration::from_micros(200),
            restore: RestorePolicy::ZeroOffset,
            timer_overhead: SimDuration::from_nanos(150),
            frequency_fallback: true,
            guard_margin_mv: 10,
            planes: vec![Plane::Core],
            skip_idle_cores: true,
        }
    }
}

/// Live counters of a deployed polling module.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PollStats {
    /// Timer ticks fired.
    pub ticks: u64,
    /// Per-core state observations made.
    pub observations: u64,
    /// Unsafe states detected.
    pub detections: u64,
    /// Restore writes issued.
    pub restores: u64,
    /// Frequency fallbacks issued (fast-path mitigation).
    pub freq_fallbacks: u64,
    /// Time of the most recent detection.
    pub last_detection: Option<SimTime>,
    /// Offsets (mV) seen at detection time.
    pub detected_offsets: Summary,
}

/// Shared handle onto a deployed module's statistics.
pub type StatsHandle = Rc<RefCell<PollStats>>;

/// The polling countermeasure kernel module.
///
/// # Examples
///
/// ```
/// use plugvolt::charmap::{CharacterizationMap, FreqBand};
/// use plugvolt::poll::{PollConfig, PollingModule, MODULE_NAME};
/// use plugvolt_cpu::freq::FreqMhz;
/// use plugvolt_cpu::model::CpuModel;
/// use plugvolt_kernel::machine::Machine;
///
/// let mut map = CharacterizationMap::new("demo", 0xf4, -300);
/// map.insert_band(FreqMhz(1_800), FreqBand {
///     fault_onset_mv: Some(-180),
///     crash_mv: Some(-220),
/// });
/// let mut machine = Machine::new(CpuModel::CometLake, 1);
/// let (module, _stats) = PollingModule::new(map, PollConfig::default());
/// machine.load_module(Box::new(module))?;
/// assert!(machine.is_module_loaded(MODULE_NAME));
/// # Ok::<(), plugvolt_kernel::machine::MachineError>(())
/// ```
#[derive(Debug)]
pub struct PollingModule {
    map: CharacterizationMap,
    cfg: PollConfig,
    stats: StatsHandle,
}

impl PollingModule {
    /// Creates the module around a characterization map, returning it
    /// together with the shared statistics handle.
    #[must_use]
    pub fn new(map: CharacterizationMap, cfg: PollConfig) -> (Self, StatsHandle) {
        let stats: StatsHandle = Rc::default();
        (
            PollingModule {
                map,
                cfg,
                stats: Rc::clone(&stats),
            },
            stats,
        )
    }

    /// Classifies a state with the configured guard margin applied: the
    /// probe is `guard_margin_mv` deeper than the observation, widening
    /// the unsafe set.
    #[must_use]
    pub fn classify_guarded(&self, freq: FreqMhz, offset_mv: i32) -> StateClass {
        let probe = if offset_mv < 0 {
            offset_mv - self.cfg.guard_margin_mv.max(0)
        } else {
            offset_mv
        };
        self.map.classify(freq, probe.max(-1_000))
    }

    /// The fastest table frequency at which `offset_mv` is safe per the
    /// (guarded) characterization, if any.
    #[must_use]
    pub fn safe_frequency_for(
        &self,
        table: &plugvolt_cpu::freq::FreqTable,
        offset_mv: i32,
    ) -> Option<FreqMhz> {
        let mut freqs: Vec<FreqMhz> = table.iter().collect();
        freqs.reverse();
        freqs
            .into_iter()
            .find(|&f| self.classify_guarded(f, offset_mv) == StateClass::Safe)
    }

    /// The restore offset the policy dictates.
    #[must_use]
    pub fn restore_offset_mv(&self) -> i32 {
        match self.cfg.restore {
            RestorePolicy::ZeroOffset => 0,
            RestorePolicy::MaximalSafe { margin_mv } => {
                self.map.maximal_safe_offset_mv(margin_mv).unwrap_or(0)
            }
        }
    }

    /// Polls one core; returns the per-plane observations it made.
    fn poll_core(&mut self, ctx: &mut ModuleCtx<'_>, core: CoreId) -> Vec<(Plane, SystemState)> {
        ctx.charge(core, self.cfg.timer_overhead);
        ctx.tracer()
            .record_span("poll/overhead", self.cfg.timer_overhead.as_picos());
        // Algorithm 3 line 4: read 0x198, locally.
        let Ok(perf) = ctx.rdmsr_local(core, Msr::IA32_PERF_STATUS) else {
            return Vec::new();
        };
        let freq = FreqMhz(PerfStatus::decode(perf).freq_mhz());
        let mut out = Vec::with_capacity(self.cfg.planes.len());
        if self.cfg.planes == [Plane::Core] {
            // Algorithm 3 line 5 verbatim: one read of the response
            // register; act on whatever plane it reflects.
            if let Ok(raw) = ctx.rdmsr_local(core, Msr::OC_MAILBOX) {
                if let Ok(req) = OcRequest::decode(raw) {
                    out.push((
                        req.plane(),
                        SystemState {
                            freq,
                            offset_mv: req.offset_mv(),
                        },
                    ));
                }
            }
            return out;
        }
        for &plane in &self.cfg.planes {
            // Explicit read command per plane, then fetch the response.
            let cmd = OcRequest::read(plane).encode();
            if ctx.wrmsr_local(core, Msr::OC_MAILBOX, cmd).is_err() {
                continue;
            }
            let Ok(raw) = ctx.rdmsr_local(core, Msr::OC_MAILBOX) else {
                continue;
            };
            if let Ok(req) = OcRequest::decode(raw) {
                out.push((
                    req.plane(),
                    SystemState {
                        freq,
                        offset_mv: req.offset_mv(),
                    },
                ));
            }
        }
        out
    }
}

impl KernelModule for PollingModule {
    fn name(&self) -> &str {
        MODULE_NAME
    }

    fn init(&mut self, ctx: &mut ModuleCtx<'_>) -> Option<SimDuration> {
        ctx.trace(
            TraceLevel::Info,
            format!(
                "polling every {} over {} characterized frequencies",
                self.cfg.period,
                self.map.len()
            ),
        );
        Some(self.cfg.period)
    }

    fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>) -> Option<SimDuration> {
        // The guard owns a tracer clone, so it outlives this borrow of
        // `ctx` and closes when the whole iteration is done.
        let _iteration = ctx.tracer().span("poll/iteration");
        self.stats.borrow_mut().ticks += 1;
        let cores = ctx.cpu().core_count();
        let restore_mv = self.restore_offset_mv();
        for c in 0..cores {
            let core = CoreId(c);
            if self.cfg.skip_idle_cores && !ctx.cpu().is_core_running(core).unwrap_or(true) {
                continue;
            }
            let observations = self.poll_core(ctx, core);
            for (plane, state) in observations {
                self.stats.borrow_mut().observations += 1;
                // Algorithm 3 line 6: membership in the (guard-widened)
                // unsafe set.
                if self.classify_guarded(state.freq, state.offset_mv) == StateClass::Safe {
                    continue;
                }
                {
                    let mut s = self.stats.borrow_mut();
                    s.detections += 1;
                    s.last_detection = Some(ctx.now());
                    s.detected_offsets.record(f64::from(state.offset_mv));
                }
                // Unsafe-state entry instant: the *later* of the
                // adversarial offset write and the core's last P-state
                // change — a CLKSCREW-style campaign parks a standing
                // offset and only makes it unsafe by escalating the
                // clock much later. Captured before the restore write
                // below overwrites the per-plane timestamp.
                let entry = match (
                    ctx.cpu().last_offset_write_at(plane),
                    ctx.cpu().last_pstate_change_at(core),
                ) {
                    (Some(w), Some(p)) => Some(w.max(p)),
                    (w, None) => w,
                    (None, p) => p,
                };
                let now = ctx.now();
                let sink = ctx.cpu().telemetry().clone();
                sink.emit(
                    now,
                    TelemetryEvent::Detection {
                        core: core.0 as u32,
                        freq_mhz: state.freq.mhz(),
                        offset_mv: state.offset_mv,
                    },
                );
                if let Some(entry) = entry {
                    let latency_us = now.saturating_duration_since(entry).as_picos() as f64 / 1e6;
                    sink.observe(
                        MetricKey::global("poll", "detection_latency_us"),
                        HistogramSpec::DETECTION_LATENCY_US,
                        latency_us,
                    );
                    sink.record_summary(
                        MetricKey::per_core("poll", "detection_latency_us", core.0 as u32),
                        latency_us,
                    );
                }
                ctx.trace(
                    TraceLevel::Warn,
                    format!(
                        "unsafe state {state} on core {c} plane {plane}; forcing {restore_mv} mV"
                    ),
                );
                // Algorithm 3 line 7: write 0x150 to force a safe state —
                // on the plane that was observed unsafe.
                let req = OcRequest::write_offset(restore_mv, plane).encode();
                if ctx.wrmsr_local(core, Msr::OC_MAILBOX, req).is_ok() {
                    self.stats.borrow_mut().restores += 1;
                    sink.emit(
                        ctx.now(),
                        TelemetryEvent::Restore {
                            core: core.0 as u32,
                            restore_mv,
                        },
                    );
                    if let Some(entry) = entry {
                        // End-to-end exposure bound: the restore command
                        // lands on the rail only after the VR latency.
                        let landing_us = ctx
                            .cpu()
                            .rail_settles_at()
                            .saturating_duration_since(entry)
                            .as_picos() as f64
                            / 1e6;
                        sink.observe(
                            MetricKey::global("poll", "restore_landing_us"),
                            HistogramSpec::RESTORE_LANDING_US,
                            landing_us,
                        );
                    }
                }
                // Fast-path mitigation: the mailbox restore only reaches
                // the rail after the VR command latency, but the core can
                // be made safe *now* by shrinking the frequency side of
                // Eq. 1. (Only core-plane timing scales with frequency in
                // this model, but the lookup is conservative either way.)
                if self.cfg.frequency_fallback {
                    let table = ctx.cpu().spec().freq_table.clone();
                    if let Some(fallback) = self.safe_frequency_for(&table, state.offset_mv) {
                        if fallback < state.freq {
                            let raw = plugvolt_msr::perf_status::encode_perf_ctl(fallback.mhz());
                            if ctx.wrmsr_local(core, Msr::IA32_PERF_CTL, raw).is_ok() {
                                self.stats.borrow_mut().freq_fallbacks += 1;
                                ctx.trace(
                                    TraceLevel::Warn,
                                    format!("frequency fallback to {fallback} on core {c}"),
                                );
                            }
                        }
                    }
                }
            }
        }
        Some(self.cfg.period)
    }

    fn exit(&mut self, ctx: &mut ModuleCtx<'_>) {
        let s = self.stats.borrow();
        ctx.trace(
            TraceLevel::Info,
            format!(
                "unloading after {} ticks, {} detections, {} restores",
                s.ticks, s.detections, s.restores
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charmap::FreqBand;
    use plugvolt_cpu::model::CpuModel;
    use plugvolt_kernel::machine::Machine;
    use plugvolt_kernel::msr_dev::MsrDev;

    fn demo_map() -> CharacterizationMap {
        let mut map = CharacterizationMap::new("demo", 0xf4, -300);
        for (mhz, onset, crash) in [
            (400, -280, -295),
            (1_800, -200, -240),
            (3_400, -150, -190),
            (4_900, -110, -150),
        ] {
            map.insert_band(
                FreqMhz(mhz),
                FreqBand {
                    fault_onset_mv: Some(onset),
                    crash_mv: Some(crash),
                },
            );
        }
        map
    }

    fn machine_with_module(cfg: PollConfig) -> (Machine, StatsHandle) {
        let mut m = Machine::new(CpuModel::CometLake, 33);
        let (module, stats) = PollingModule::new(demo_map(), cfg);
        m.load_module(Box::new(module))
            .expect("fresh machine has no module name collision");
        (m, stats)
    }

    #[test]
    fn idle_polling_detects_nothing() {
        let (mut m, stats) = machine_with_module(PollConfig::default());
        m.advance(SimDuration::from_millis(10));
        let s = stats.borrow();
        assert_eq!(s.ticks, 50);
        assert_eq!(s.observations, 200); // 4 cores × 50 ticks
        assert_eq!(s.detections, 0);
        assert_eq!(s.restores, 0);
    }

    #[test]
    fn unsafe_offset_is_detected_and_restored() {
        let (mut m, stats) = machine_with_module(PollConfig::default());
        // Adversary writes a deep undervolt from userspace.
        let dev = MsrDev::open(&m, CoreId(0)).expect("core 0 always exists");
        let req = OcRequest::write_offset(-250, Plane::Core).encode();
        dev.write(&mut m, Msr::OC_MAILBOX, req)
            .expect("mailbox write on a live machine succeeds");
        assert_eq!(m.cpu().core_offset_mv(), -250);
        // Within one period the module must have cleared it.
        m.advance(SimDuration::from_micros(250));
        assert_eq!(m.cpu().core_offset_mv(), 0);
        let s = stats.borrow();
        assert!(s.detections >= 1);
        assert!(s.restores >= 1);
        assert!(s.last_detection.is_some());
    }

    #[test]
    fn restore_happens_before_rail_moves() {
        // The complete-prevention property: detection inside the VR
        // command latency means the rail never leaves nominal.
        let (mut m, _stats) = machine_with_module(PollConfig::default());
        let nominal = m
            .cpu()
            .spec()
            .nominal_voltage_mv(m.cpu().core_freq(CoreId(0)).expect("core 0 always exists"));
        let dev = MsrDev::open(&m, CoreId(0)).expect("core 0 always exists");
        let req = OcRequest::write_offset(-250, Plane::Core).encode();
        dev.write(&mut m, Msr::OC_MAILBOX, req)
            .expect("mailbox write on a live machine succeeds");
        // Watch the rail for 5 ms.
        let mut min_v = f64::INFINITY;
        for _ in 0..500 {
            m.advance(SimDuration::from_micros(10));
            min_v = min_v.min(m.cpu().core_voltage_mv(m.now()));
        }
        assert!(
            (min_v - nominal).abs() < 1.0,
            "rail dipped to {min_v} (nominal {nominal})"
        );
    }

    #[test]
    fn safe_undervolts_are_left_alone() {
        // The paper's selling point: benign DVFS keeps working.
        let (mut m, stats) = machine_with_module(PollConfig::default());
        let dev = MsrDev::open(&m, CoreId(0)).expect("core 0 always exists");
        let req = OcRequest::write_offset(-100, Plane::Core).encode();
        dev.write(&mut m, Msr::OC_MAILBOX, req)
            .expect("mailbox write on a live machine succeeds");
        m.advance(SimDuration::from_millis(5));
        assert_eq!(m.cpu().core_offset_mv(), -100, "benign undervolt kept");
        assert_eq!(stats.borrow().detections, 0);
    }

    #[test]
    fn maximal_safe_restore_policy_clamps_not_clears() {
        let cfg = PollConfig {
            restore: RestorePolicy::MaximalSafe { margin_mv: 5 },
            ..PollConfig::default()
        };
        let (mut m, stats) = machine_with_module(cfg);
        let dev = MsrDev::open(&m, CoreId(0)).expect("core 0 always exists");
        let req = OcRequest::write_offset(-250, Plane::Core).encode();
        dev.write(&mut m, Msr::OC_MAILBOX, req)
            .expect("mailbox write on a live machine succeeds");
        m.advance(SimDuration::from_micros(250));
        // Maximal safe = shallowest onset (−110) + 1 + margin 5 = −104.
        let restored = m.cpu().core_offset_mv();
        assert!((-105..=-103).contains(&restored), "restored to {restored}");
        assert!(stats.borrow().restores >= 1);
    }

    #[test]
    fn overhead_is_fractions_of_a_percent() {
        let (mut m, stats) = machine_with_module(PollConfig::default());
        m.advance(SimDuration::from_millis(100));
        let stolen = m.stolen_time(CoreId(0));
        let frac = stolen.as_picos() as f64 / SimDuration::from_millis(100).as_picos() as f64;
        assert!((0.0005..0.01).contains(&frac), "overhead fraction = {frac}");
        assert!(stats.borrow().ticks >= 499);
    }

    #[test]
    fn idle_cores_are_not_polled() {
        let (mut m, stats) = machine_with_module(PollConfig::default());
        // Park three of four cores.
        let now = m.now();
        for c in 1..4 {
            m.cpu_mut()
                .enter_idle(now, CoreId(c), 6)
                .expect("running core can enter idle");
        }
        m.advance(SimDuration::from_millis(10));
        let s = stats.borrow();
        assert_eq!(s.ticks, 50);
        assert_eq!(s.observations, 50, "only the running core is observed");
        // And the idle cores accrued no poll cost.
        assert_eq!(m.stolen_time(CoreId(3)), SimDuration::ZERO);
        assert!(m.stolen_time(CoreId(0)) > SimDuration::ZERO);
    }

    #[test]
    fn woken_core_is_polled_within_one_period() {
        let (mut m, stats) = machine_with_module(PollConfig::default());
        let now = m.now();
        m.cpu_mut()
            .enter_idle(now, CoreId(1), 6)
            .expect("running core can enter idle");
        m.advance(SimDuration::from_millis(2));
        let before = stats.borrow().observations;
        let now = m.now();
        m.cpu_mut()
            .wake_core(now, CoreId(1))
            .expect("idle core can be woken");
        m.advance(SimDuration::from_micros(250));
        // One tick covering both running cores.
        assert!(stats.borrow().observations >= before + 2);
    }

    #[test]
    fn module_unload_traces_summary() {
        let (mut m, _stats) = machine_with_module(PollConfig::default());
        m.advance(SimDuration::from_millis(1));
        m.unload_module(MODULE_NAME)
            .expect("module was loaded by the fixture");
        assert!(m.trace().any(|r| r.message.contains("unloading after")));
    }

    #[test]
    fn detection_records_telemetry_latency_and_events() {
        let (mut m, stats) = machine_with_module(PollConfig::default());
        let dev = MsrDev::open(&m, CoreId(0)).expect("core 0 always exists");
        let req = OcRequest::write_offset(-250, Plane::Core).encode();
        dev.write(&mut m, Msr::OC_MAILBOX, req)
            .expect("mailbox write on a live machine succeeds");
        m.advance(SimDuration::from_micros(250));
        assert!(stats.borrow().detections >= 1);
        m.telemetry().with(|reg| {
            let latency = reg
                .histogram(&MetricKey::global("poll", "detection_latency_us"))
                .expect("detection latency histogram recorded");
            assert!(latency.total() >= 1);
            let per_core = reg
                .summary(&MetricKey::per_core("poll", "detection_latency_us", 0))
                .expect("per-core latency summary recorded");
            // Detection happens on the first tick at or after the write,
            // so latency is bounded by one polling period.
            assert!(per_core.max().expect("non-empty summary") <= 200.0);
            let landing = reg
                .histogram(&MetricKey::global("poll", "restore_landing_us"))
                .expect("restore landing histogram recorded");
            assert!(landing.total() >= 1);
            let kinds: Vec<&str> = reg.events().map(|e| e.event.kind()).collect();
            assert!(kinds.contains(&"detection"));
            assert!(kinds.contains(&"restore"));
        });
    }

    #[test]
    fn detection_latency_is_bounded_by_period() {
        let (mut m, stats) = machine_with_module(PollConfig::default());
        m.advance(SimDuration::from_micros(123)); // desynchronize
        let dev = MsrDev::open(&m, CoreId(0)).expect("core 0 always exists");
        let written_at = m.now();
        let req = OcRequest::write_offset(-250, Plane::Core).encode();
        dev.write(&mut m, Msr::OC_MAILBOX, req)
            .expect("mailbox write on a live machine succeeds");
        m.advance(SimDuration::from_micros(400));
        let detected_at = stats.borrow().last_detection.expect("detected");
        let latency = detected_at.saturating_duration_since(written_at);
        assert!(
            latency <= SimDuration::from_micros(205),
            "latency = {latency}"
        );
    }
}
