//! The paper's hypothetical `MSR_VOLTAGE_OFFSET_LIMIT` (Sec. 5.2).
//!
//! A vendor-provisioned register clamping what MSR 0x150 may request:
//! writes asking for an undervolt deeper than the **maximal safe state**
//! characterized for the CPU generation are clamped to that bound —
//! exactly the `DRAM_MIN_PWR` semantics of
//! [`crate::power_limit::DramPowerInfo::clamp`], transplanted to voltage.
//!
//! Layout (our design, no real part implements this):
//!
//! - bits 10:0 — maximum allowed undervolt *magnitude*, 1/1024 V units;
//! - bit 63 — enable.

use crate::oc_mailbox::{mv_to_units, units_to_mv, OcRequest};
use serde::{Deserialize, Serialize};

/// A decoded `MSR_VOLTAGE_OFFSET_LIMIT` value.
///
/// # Examples
///
/// ```
/// use plugvolt_msr::offset_limit::VoltageOffsetLimit;
/// use plugvolt_msr::oc_mailbox::{OcRequest, Plane};
///
/// // Hardware provisioned with a −125 mV maximal safe state:
/// let limit = VoltageOffsetLimit::new(-125);
/// let req = OcRequest::write_offset(-250, Plane::Core);
/// let clamped = limit.clamp(req);
/// assert_eq!(clamped.offset_mv(), -125);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VoltageOffsetLimit {
    max_undervolt_units: u16, // 11 bits, magnitude
    enabled: bool,
}

impl VoltageOffsetLimit {
    /// Creates an enabled limit allowing undervolts down to
    /// `max_offset_mv` (a non-positive millivolt offset).
    ///
    /// # Panics
    ///
    /// Panics if `max_offset_mv` is positive or deeper than the mailbox
    /// field allows.
    #[must_use]
    pub fn new(max_offset_mv: i32) -> Self {
        assert!(
            max_offset_mv <= 0,
            "limit must be a (non-positive) undervolt bound"
        );
        assert!(
            max_offset_mv >= OcRequest::MIN_OFFSET_MV,
            "limit {max_offset_mv} mV deeper than the mailbox field"
        );
        VoltageOffsetLimit {
            max_undervolt_units: mv_to_units(-max_offset_mv) as u16,
            enabled: true,
        }
    }

    /// A disabled limit: all requests pass through.
    #[must_use]
    pub fn disabled() -> Self {
        VoltageOffsetLimit {
            max_undervolt_units: 0,
            enabled: false,
        }
    }

    /// Whether clamping is active.
    #[must_use]
    pub fn is_enabled(self) -> bool {
        self.enabled
    }

    /// The deepest permitted offset in millivolts (non-positive), or
    /// `None` when disabled.
    #[must_use]
    pub fn max_offset_mv(self) -> Option<i32> {
        self.enabled
            .then(|| -units_to_mv(self.max_undervolt_units as i16))
    }

    /// Clamps a mailbox request: undervolts deeper than the bound are
    /// pulled up to it; reads, overvolts and shallow undervolts pass
    /// unchanged. Non-core planes are clamped identically (the bound is
    /// characterized per package).
    #[must_use]
    pub fn clamp(self, req: OcRequest) -> OcRequest {
        if !self.enabled || !req.is_write() {
            return req;
        }
        let bound_units = -(self.max_undervolt_units as i16);
        if req.offset_units() < bound_units {
            req.with_offset_units(bound_units)
        } else {
            req
        }
    }

    /// Encodes to the raw 64-bit MSR value.
    #[must_use]
    pub fn encode(self) -> u64 {
        u64::from(self.max_undervolt_units & 0x7FF) | (u64::from(self.enabled) << 63)
    }

    /// Decodes a raw 64-bit MSR value.
    #[must_use]
    pub fn decode(raw: u64) -> Self {
        VoltageOffsetLimit {
            max_undervolt_units: (raw & 0x7FF) as u16,
            enabled: raw >> 63 == 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oc_mailbox::Plane;

    #[test]
    fn round_trip() {
        let l = VoltageOffsetLimit::new(-130);
        let back = VoltageOffsetLimit::decode(l.encode());
        assert_eq!(back, l);
        assert_eq!(back.max_offset_mv(), Some(-130));
    }

    #[test]
    fn disabled_reports_none_and_passes_everything() {
        let l = VoltageOffsetLimit::disabled();
        assert_eq!(l.max_offset_mv(), None);
        let deep = OcRequest::write_offset(-400, Plane::Core);
        assert_eq!(l.clamp(deep), deep);
    }

    #[test]
    fn clamps_deep_undervolts() {
        let l = VoltageOffsetLimit::new(-100);
        let clamped = l.clamp(OcRequest::write_offset(-300, Plane::Core));
        assert_eq!(clamped.offset_mv(), -100);
        assert_eq!(clamped.plane(), Plane::Core);
        assert!(clamped.is_write());
    }

    #[test]
    fn passes_shallow_and_positive_offsets() {
        let l = VoltageOffsetLimit::new(-100);
        let shallow = OcRequest::write_offset(-50, Plane::Core);
        assert_eq!(l.clamp(shallow), shallow);
        let over = OcRequest::write_offset(40, Plane::Core);
        assert_eq!(l.clamp(over), over);
    }

    #[test]
    fn exact_bound_passes() {
        let l = VoltageOffsetLimit::new(-100);
        let at = OcRequest::write_offset(-100, Plane::Core);
        assert_eq!(l.clamp(at).offset_mv(), -100);
    }

    #[test]
    fn reads_pass_unchanged() {
        let l = VoltageOffsetLimit::new(-10);
        let read = OcRequest::read(Plane::Uncore);
        assert_eq!(l.clamp(read), read);
    }

    #[test]
    fn clamps_all_planes() {
        let l = VoltageOffsetLimit::new(-80);
        for plane in Plane::ALL {
            let c = l.clamp(OcRequest::write_offset(-200, plane));
            // Clamped to the bound, never deeper; unit quantization may
            // leave it up to 1 mV shallower.
            assert!(
                (-80..=-79).contains(&c.offset_mv()),
                "plane {plane}: {}",
                c.offset_mv()
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn positive_bound_rejected() {
        let _ = VoltageOffsetLimit::new(50);
    }
}
