//! The overclocking-mailbox voltage interface behind MSR `0x150`.
//!
//! Bit layout, following the paper's Table 1 (0 = LSB):
//!
//! | Bits   | Function      | Explanation                                        |
//! |--------|---------------|----------------------------------------------------|
//! | 0–20   | —             | reserved                                           |
//! | 21–31  | offset        | voltage offset relative to base voltage, 1/1024 V units, 11-bit two's complement |
//! | 32     | write-enable  | 1 ⇒ apply the offset, 0 ⇒ read request             |
//! | 33–39  | —             | reserved (Algorithm 1 also sets bit 36 as part of the 0x11 command byte) |
//! | 40–42  | plane select  | 0 = core, 1 = GPU, 2 = cache, 3 = uncore, 4 = analog I/O |
//! | 43–62  | —             | reserved                                           |
//! | 63     | run/busy      | must be 1 for the write to be accepted             |
//!
//! [`encode_offset_request`] is a faithful transcription of the paper's
//! Algorithm 1 (`offset_voltage`); [`OcRequest`] is the typed form with an
//! exact decoder.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The voltage domain a mailbox request targets (bits 42:40 of 0x150).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Plane {
    /// CPU core logic — the plane every published DVFS attack targets.
    Core = 0,
    /// Integrated GPU.
    Gpu = 1,
    /// L1/L2 cache slices.
    Cache = 2,
    /// Uncore / system agent.
    Uncore = 3,
    /// Analog I/O.
    AnalogIo = 4,
}

impl Plane {
    /// All planes, in index order.
    pub const ALL: [Plane; 5] = [
        Plane::Core,
        Plane::Gpu,
        Plane::Cache,
        Plane::Uncore,
        Plane::AnalogIo,
    ];

    /// The plane-select field value.
    #[must_use]
    pub const fn index(self) -> u8 {
        self as u8
    }

    /// Parses a plane-select field value.
    #[must_use]
    pub fn from_index(idx: u8) -> Option<Plane> {
        Plane::ALL.get(usize::from(idx)).copied()
    }
}

impl fmt::Display for Plane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Plane::Core => "core",
            Plane::Gpu => "gpu",
            Plane::Cache => "cache",
            Plane::Uncore => "uncore",
            Plane::AnalogIo => "analog-io",
        };
        f.write_str(s)
    }
}

/// Errors when decoding a raw 0x150 value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecodeError {
    /// Bit 63 (run/busy) was clear; the mailbox ignores such writes.
    RunBitClear,
    /// The plane-select field held 5, 6 or 7.
    UnknownPlane(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::RunBitClear => write!(f, "mailbox run bit (63) not set"),
            DecodeError::UnknownPlane(p) => write!(f, "unknown plane select {p}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A decoded overclocking-mailbox request.
///
/// # Examples
///
/// ```
/// use plugvolt_msr::oc_mailbox::{OcRequest, Plane};
///
/// let raw = OcRequest::write_offset(-250, Plane::Core).encode();
/// let back = OcRequest::decode(raw)?;
/// assert_eq!(back.offset_mv(), -250);
/// assert_eq!(back.plane(), Plane::Core);
/// assert!(back.is_write());
/// # Ok::<(), plugvolt_msr::oc_mailbox::DecodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OcRequest {
    offset_units: i16, // 11-bit two's complement, 1/1024 V units
    write: bool,
    plane: Plane,
}

/// Converts millivolts to mailbox units (1/1024 V), the paper's
/// `offset * 1024 / 1000` with truncation toward zero, exactly as C
/// integer division behaves in the reference Algorithm 1.
#[must_use]
pub fn mv_to_units(offset_mv: i32) -> i16 {
    (offset_mv * 1024 / 1000) as i16
}

/// Converts mailbox units back to millivolts (rounding to nearest).
#[must_use]
pub fn units_to_mv(units: i16) -> i32 {
    let n = i32::from(units) * 1000;
    if n >= 0 {
        (n + 512) / 1024
    } else {
        (n - 512) / 1024
    }
}

impl OcRequest {
    /// Largest negative offset expressible in the 11-bit field, ≈ −1 V.
    pub const MIN_OFFSET_MV: i32 = -1000;
    /// Largest positive offset expressible, ≈ +0.999 V.
    pub const MAX_OFFSET_MV: i32 = 999;

    /// Builds a *write* request applying `offset_mv` millivolts to `plane`.
    ///
    /// # Panics
    ///
    /// Panics if the offset does not fit the 11-bit field
    /// (`MIN_OFFSET_MV..=MAX_OFFSET_MV`).
    #[must_use]
    pub fn write_offset(offset_mv: i32, plane: Plane) -> Self {
        assert!(
            (Self::MIN_OFFSET_MV..=Self::MAX_OFFSET_MV).contains(&offset_mv),
            "offset {offset_mv} mV out of field range"
        );
        OcRequest {
            offset_units: mv_to_units(offset_mv),
            write: true,
            plane,
        }
    }

    /// Builds a *read* request for `plane` (write-enable clear).
    #[must_use]
    pub fn read(plane: Plane) -> Self {
        OcRequest {
            offset_units: 0,
            write: false,
            plane,
        }
    }

    /// The requested offset in millivolts (negative = undervolt).
    #[must_use]
    pub fn offset_mv(self) -> i32 {
        units_to_mv(self.offset_units)
    }

    /// The raw 11-bit offset field value in 1/1024 V units.
    #[must_use]
    pub fn offset_units(self) -> i16 {
        self.offset_units
    }

    /// Returns a copy with the raw offset field replaced (used by
    /// hardware clamps that operate in native units).
    ///
    /// # Panics
    ///
    /// Panics if `units` does not fit the 11-bit field.
    #[must_use]
    pub fn with_offset_units(self, units: i16) -> Self {
        assert!((-1024..=1023).contains(&units), "units out of 11-bit field");
        OcRequest {
            offset_units: units,
            ..self
        }
    }

    /// Whether this is a write (apply) request.
    #[must_use]
    pub fn is_write(self) -> bool {
        self.write
    }

    /// The targeted voltage plane.
    #[must_use]
    pub fn plane(self) -> Plane {
        self.plane
    }

    /// Encodes to the raw 64-bit MSR value, bit-compatible with the
    /// paper's Algorithm 1.
    #[must_use]
    pub fn encode(self) -> u64 {
        let mut val = (u64::from(self.offset_units as u16) & 0xFFF) << 21;
        val &= 0xFFE0_0000;
        // 0x8000_0011_0000_0000 = run bit 63 | command byte 0x11 in bits
        // 39:32 (bit 32 doubles as the paper's "write-enable").
        if self.write {
            val |= 0x8000_0011_0000_0000;
        } else {
            val |= 0x8000_0010_0000_0000;
        }
        val |= u64::from(self.plane.index()) << 40;
        val
    }

    /// Decodes a raw 64-bit MSR value.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the run bit is clear or the plane-select
    /// field is invalid.
    pub fn decode(raw: u64) -> Result<Self, DecodeError> {
        if raw >> 63 == 0 {
            return Err(DecodeError::RunBitClear);
        }
        let plane_bits = ((raw >> 40) & 0x7) as u8;
        let plane = Plane::from_index(plane_bits).ok_or(DecodeError::UnknownPlane(plane_bits))?;
        let field = ((raw >> 21) & 0x7FF) as u16;
        // Sign-extend the 11-bit field.
        let offset_units = if field & 0x400 != 0 {
            (field | 0xF800) as i16
        } else {
            field as i16
        };
        Ok(OcRequest {
            offset_units,
            write: (raw >> 32) & 1 == 1,
            plane,
        })
    }
}

/// The paper's Algorithm 1 (`offset_voltage`), transcribed literally:
/// computes the raw 64-bit value that applies `offset_mv` millivolts to
/// plane index `plane`.
///
/// Prefer [`OcRequest::write_offset`] in new code; this function exists to
/// prove bit-equivalence with the published pseudocode (see the tests).
#[must_use]
pub fn encode_offset_request(offset_mv: i32, plane: u8) -> u64 {
    // set val ← (offset*1024/1000)
    let val = offset_mv * 1024 / 1000;
    // set val ← 0xFFE00000 and ((val and 0xFFF) left-shift 21)
    let mut val = 0xFFE0_0000u64 & ((val as u64 & 0xFFF) << 21);
    // set val ← val or 0x8000001100000000
    val |= 0x8000_0011_0000_0000;
    // set val ← val or (plane left-shift 40)
    val |= u64::from(plane) << 40;
    val
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm1_equivalence() {
        for offset in [-1, -50, -100, -150, -200, -299, -300, 0, 25, 100] {
            for plane in Plane::ALL {
                assert_eq!(
                    OcRequest::write_offset(offset, plane).encode(),
                    encode_offset_request(offset, plane.index()),
                    "offset={offset} plane={plane}"
                );
            }
        }
    }

    #[test]
    fn round_trip_all_planes_and_offsets() {
        for offset in (-300..=300).step_by(7) {
            for plane in Plane::ALL {
                let req = OcRequest::write_offset(offset, plane);
                let back = OcRequest::decode(req.encode()).expect("decodes");
                assert_eq!(back.plane(), plane);
                assert!(back.is_write());
                // mV→units→mV loses at most 1 mV to quantization.
                assert!(
                    (back.offset_mv() - offset).abs() <= 1,
                    "offset {offset} decoded as {}",
                    back.offset_mv()
                );
            }
        }
    }

    #[test]
    fn units_round_trip_exactly() {
        let req = OcRequest::write_offset(-150, Plane::Core);
        let back = OcRequest::decode(req.encode()).unwrap();
        assert_eq!(back.offset_units(), req.offset_units());
    }

    #[test]
    fn known_plundervolt_value() {
        // −(2^k) style sanity: −250 mV on the core plane. 11-bit field of
        // −256 units = 0x700 (two's complement in 11 bits).
        let raw = encode_offset_request(-250, 0);
        assert_eq!(raw >> 63, 1, "run bit set");
        assert_eq!((raw >> 32) & 0xFF, 0x11, "write command byte");
        assert_eq!((raw >> 40) & 0x7, 0, "core plane");
        let field = (raw >> 21) & 0x7FF;
        assert_eq!(field, 0x700, "raw={raw:#018x} field={field:#x}");
    }

    #[test]
    fn reserved_low_bits_stay_clear() {
        for offset in [-300, -1, 0, 300] {
            let raw = OcRequest::write_offset(offset, Plane::Cache).encode();
            assert_eq!(raw & 0x1F_FFFF, 0, "bits 0–20 reserved");
        }
    }

    #[test]
    fn read_request_uses_read_command() {
        let raw = OcRequest::read(Plane::Gpu).encode();
        assert_eq!((raw >> 32) & 0xFF, 0x10);
        let back = OcRequest::decode(raw).unwrap();
        assert!(!back.is_write());
        assert_eq!(back.plane(), Plane::Gpu);
    }

    #[test]
    fn decode_rejects_clear_run_bit() {
        assert_eq!(
            OcRequest::decode(0x0000_0011_0000_0000),
            Err(DecodeError::RunBitClear)
        );
    }

    #[test]
    fn decode_rejects_bad_plane() {
        let raw = 0x8000_0011_0000_0000u64 | (6 << 40);
        assert_eq!(OcRequest::decode(raw), Err(DecodeError::UnknownPlane(6)));
    }

    #[test]
    #[should_panic(expected = "out of field range")]
    fn offset_overflow_panics() {
        let _ = OcRequest::write_offset(-1_500, Plane::Core);
    }

    #[test]
    fn plane_indices_match_table1() {
        assert_eq!(Plane::Core.index(), 0);
        assert_eq!(Plane::Gpu.index(), 1);
        assert_eq!(Plane::Cache.index(), 2);
        assert_eq!(Plane::Uncore.index(), 3);
        assert_eq!(Plane::AnalogIo.index(), 4);
        assert_eq!(Plane::from_index(5), None);
    }

    #[test]
    fn unit_conversion_examples() {
        assert_eq!(mv_to_units(-1000), -1024);
        assert_eq!(mv_to_units(-100), -102);
        assert_eq!(units_to_mv(-102), -100);
        assert_eq!(mv_to_units(0), 0);
        assert_eq!(units_to_mv(0), 0);
    }
}
