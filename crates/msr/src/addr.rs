//! MSR addresses used in the reproduction.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A model-specific register address (the ECX operand of `rdmsr`/`wrmsr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Msr(pub u32);

impl Msr {
    /// `IA32_PERF_STATUS` (0x198): current P-state ratio and core voltage.
    /// The paper's countermeasure polls this for the frequency/voltage pair.
    pub const IA32_PERF_STATUS: Msr = Msr(0x198);
    /// `IA32_PERF_CTL` (0x199): requested P-state ratio (cpufreq writes it).
    pub const IA32_PERF_CTL: Msr = Msr(0x199);
    /// The overclocking-mailbox voltage-offset interface (0x150) that
    /// Plundervolt/V0LTpwn abuse and the paper's Table 1 documents.
    pub const OC_MAILBOX: Msr = Msr(0x150);
    /// `MSR_DRAM_POWER_LIMIT` (0x618): DRAM power limiting, the semantics
    /// the paper's Sec. 5.2 borrows.
    pub const DRAM_POWER_LIMIT: Msr = Msr(0x618);
    /// `MSR_DRAM_POWER_INFO` (0x61C): carries `DRAM_MIN_PWR`, the clamp
    /// floor analogous to the proposed voltage-offset clamp.
    pub const DRAM_POWER_INFO: Msr = Msr(0x61C);
    /// The paper's **hypothetical** `MSR_VOLTAGE_OFFSET_LIMIT` (Sec. 5.2):
    /// a vendor-provisioned clamp on 0x150 offsets. We place it at 0x151,
    /// an address unused by real Intel parts.
    pub const VOLTAGE_OFFSET_LIMIT: Msr = Msr(0x151);
    /// `IA32_THERM_STATUS` (0x19C), used by thermal sanity checks.
    pub const IA32_THERM_STATUS: Msr = Msr(0x19C);
    /// `IA32_BIOS_SIGN_ID` (0x8B): reports the loaded microcode revision.
    pub const IA32_BIOS_SIGN_ID: Msr = Msr(0x8B);
    /// `MSR_PKG_ENERGY_STATUS` (0x611): the RAPL package energy counter.
    pub const PKG_ENERGY_STATUS: Msr = Msr(0x611);
    /// `IA32_TIME_STAMP_COUNTER` (0x10): the invariant TSC.
    pub const TIME_STAMP_COUNTER: Msr = Msr(0x10);

    /// The raw address.
    #[must_use]
    pub const fn addr(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Msr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Msr::IA32_PERF_STATUS => write!(f, "IA32_PERF_STATUS(0x198)"),
            Msr::IA32_PERF_CTL => write!(f, "IA32_PERF_CTL(0x199)"),
            Msr::OC_MAILBOX => write!(f, "OC_MAILBOX(0x150)"),
            Msr::DRAM_POWER_LIMIT => write!(f, "MSR_DRAM_POWER_LIMIT(0x618)"),
            Msr::DRAM_POWER_INFO => write!(f, "MSR_DRAM_POWER_INFO(0x61C)"),
            Msr::VOLTAGE_OFFSET_LIMIT => write!(f, "MSR_VOLTAGE_OFFSET_LIMIT(0x151)"),
            Msr::IA32_THERM_STATUS => write!(f, "IA32_THERM_STATUS(0x19C)"),
            Msr::IA32_BIOS_SIGN_ID => write!(f, "IA32_BIOS_SIGN_ID(0x8B)"),
            Msr::PKG_ENERGY_STATUS => write!(f, "MSR_PKG_ENERGY_STATUS(0x611)"),
            Msr::TIME_STAMP_COUNTER => write!(f, "IA32_TIME_STAMP_COUNTER(0x10)"),
            Msr(a) => write!(f, "MSR({a:#x})"),
        }
    }
}

impl From<u32> for Msr {
    fn from(addr: u32) -> Self {
        Msr(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_addresses() {
        assert_eq!(Msr::OC_MAILBOX.addr(), 0x150);
        assert_eq!(Msr::IA32_PERF_STATUS.addr(), 0x198);
        assert_eq!(Msr::DRAM_POWER_LIMIT.addr(), 0x618);
    }

    #[test]
    fn display_names() {
        assert_eq!(Msr::OC_MAILBOX.to_string(), "OC_MAILBOX(0x150)");
        assert_eq!(Msr(0xABC).to_string(), "MSR(0xabc)");
    }

    #[test]
    fn from_u32() {
        assert_eq!(Msr::from(0x150), Msr::OC_MAILBOX);
    }
}
