//! The per-package MSR register file with microcode intercept hooks.
//!
//! `rdmsr`/`wrmsr` of an unimplemented address raise `#GP` on real parts;
//! [`MsrFile`] reproduces that. Writes pass through an ordered chain of
//! [`MsrInterceptor`]s first — this is the mechanism the paper's Sec. 5.1
//! microcode countermeasure hooks: a microcode sequencer patch can *allow*,
//! *clamp* or *write-ignore* a `wrmsr` to 0x150 (write-ignore behaviour is
//! implemented on several real MSRs).

use crate::addr::Msr;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// What an interceptor decides about a pending `wrmsr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WriteDisposition {
    /// Let the (possibly already clamped) value through.
    Allow,
    /// Silently drop the write, leaving the register unchanged — the
    /// paper's microcode "write-ignore".
    Ignore,
    /// Replace the value and continue down the chain.
    Clamp(u64),
    /// Raise `#GP` to the writer.
    Fault,
}

/// How a `wrmsr` concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WriteOutcome {
    /// The value (after any clamps) was stored.
    Written {
        /// The value actually stored.
        stored: u64,
    },
    /// An interceptor write-ignored it; the register is unchanged.
    Ignored,
}

impl WriteOutcome {
    /// Whether anything was stored.
    #[must_use]
    pub fn was_written(self) -> bool {
        matches!(self, WriteOutcome::Written { .. })
    }
}

/// MSR access errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MsrError {
    /// `#GP`: the address is not implemented on this part.
    GeneralProtection {
        /// The offending address.
        msr: Msr,
    },
    /// `#GP` raised by an interceptor (e.g. a locked register).
    WriteFault {
        /// The offending address.
        msr: Msr,
    },
}

impl fmt::Display for MsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsrError::GeneralProtection { msr } => {
                write!(f, "#GP: access to unimplemented {msr}")
            }
            MsrError::WriteFault { msr } => write!(f, "#GP: write to {msr} rejected"),
        }
    }
}

impl std::error::Error for MsrError {}

/// A microcode-level write intercept.
///
/// Interceptors run in registration order; the first `Ignore` or `Fault`
/// wins, `Clamp`ed values feed the next interceptor.
pub trait MsrInterceptor {
    /// Short name for traces, e.g. `"maximal-safe-state-patch"`.
    /// Sampled once at registration — [`MsrFile`] indexes the chain by
    /// this value, so it must be stable for the interceptor's lifetime.
    fn name(&self) -> &str;

    /// Decides what happens to a pending write of `value` to `msr`.
    fn on_write(&mut self, msr: Msr, value: u64) -> WriteDisposition;
}

/// One registered interceptor: the hook plus its registration-time name
/// (cached so name lookups never re-enter the trait object).
struct InterceptorEntry {
    name: Box<str>,
    hook: Box<dyn MsrInterceptor>,
}

/// The register file of one CPU package.
///
/// # Examples
///
/// ```
/// use plugvolt_msr::addr::Msr;
/// use plugvolt_msr::file::MsrFile;
///
/// let mut file = MsrFile::new();
/// file.implement(Msr::OC_MAILBOX, 0);
/// file.wrmsr(Msr::OC_MAILBOX, 0xABC)?;
/// assert_eq!(file.rdmsr(Msr::OC_MAILBOX)?, 0xABC);
/// assert!(file.rdmsr(Msr(0xDEAD)).is_err());
/// # Ok::<(), plugvolt_msr::file::MsrError>(())
/// ```
#[derive(Default)]
pub struct MsrFile {
    regs: BTreeMap<Msr, u64>,
    /// The chain, in registration order.
    interceptors: Vec<InterceptorEntry>,
    /// Registered-name index: name → number of chain entries bearing it.
    /// Keeps [`MsrFile::has_interceptor`] and the absent-name fast path
    /// of [`MsrFile::remove_interceptor`] off the chain entirely.
    by_name: BTreeMap<Box<str>, usize>,
}

impl fmt::Debug for MsrFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MsrFile")
            .field("implemented", &self.regs.len())
            .field(
                "interceptors",
                &self.interceptor_names().collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl MsrFile {
    /// Creates an empty register file.
    #[must_use]
    pub fn new() -> Self {
        MsrFile::default()
    }

    /// Declares `msr` implemented with a reset value. Re-implementing an
    /// address resets it.
    pub fn implement(&mut self, msr: Msr, reset_value: u64) {
        self.regs.insert(msr, reset_value);
    }

    /// Removes `msr`; further accesses raise `#GP`.
    pub fn unimplement(&mut self, msr: Msr) {
        self.regs.remove(&msr);
    }

    /// Whether `msr` is implemented.
    #[must_use]
    pub fn is_implemented(&self, msr: Msr) -> bool {
        self.regs.contains_key(&msr)
    }

    /// Registers a write interceptor at the end of the chain, caching
    /// its name in the index. Returns an identifier for
    /// [`remove_interceptor`](Self::remove_interceptor).
    pub fn add_interceptor(&mut self, interceptor: Box<dyn MsrInterceptor>) -> usize {
        let name: Box<str> = interceptor.name().into();
        *self.by_name.entry(name.clone()).or_insert(0) += 1;
        self.interceptors.push(InterceptorEntry {
            name,
            hook: interceptor,
        });
        self.interceptors.len() - 1
    }

    /// Removes every interceptor registered under `name` (chain order of
    /// the rest is preserved). Returns whether any was removed. The
    /// absent-name case is an index lookup that never walks the chain.
    pub fn remove_interceptor(&mut self, name: &str) -> bool {
        if self.by_name.remove(name).is_none() {
            return false;
        }
        self.interceptors.retain(|e| &*e.name != name);
        true
    }

    /// Whether any interceptor is registered under `name` — an index
    /// lookup, no chain walk, no virtual call.
    #[must_use]
    pub fn has_interceptor(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Names of the registered interceptors, in chain order — served
    /// from the registration-time cache without re-entering the trait
    /// objects.
    pub fn interceptor_names(&self) -> impl Iterator<Item = &str> {
        self.interceptors.iter().map(|e| &*e.name)
    }

    /// `rdmsr`.
    ///
    /// # Errors
    ///
    /// [`MsrError::GeneralProtection`] if `msr` is not implemented.
    pub fn rdmsr(&self, msr: Msr) -> Result<u64, MsrError> {
        self.regs
            .get(&msr)
            .copied()
            .ok_or(MsrError::GeneralProtection { msr })
    }

    /// `wrmsr`, running the interceptor chain.
    ///
    /// # Errors
    ///
    /// [`MsrError::GeneralProtection`] if `msr` is not implemented, or
    /// [`MsrError::WriteFault`] if an interceptor faulted the write.
    pub fn wrmsr(&mut self, msr: Msr, value: u64) -> Result<WriteOutcome, MsrError> {
        // One map traversal: hold the slot across the interceptor chain
        // (disjoint field borrows) instead of probing again to store.
        let Some(slot) = self.regs.get_mut(&msr) else {
            return Err(MsrError::GeneralProtection { msr });
        };
        let mut value = value;
        for i in &mut self.interceptors {
            match i.hook.on_write(msr, value) {
                WriteDisposition::Allow => {}
                WriteDisposition::Ignore => return Ok(WriteOutcome::Ignored),
                WriteDisposition::Clamp(v) => value = v,
                WriteDisposition::Fault => return Err(MsrError::WriteFault { msr }),
            }
        }
        *slot = value;
        Ok(WriteOutcome::Written { stored: value })
    }

    /// Stores directly, bypassing interceptors — hardware-internal updates
    /// (e.g. the package refreshing `IA32_PERF_STATUS`), not software
    /// `wrmsr`.
    ///
    /// # Panics
    ///
    /// Panics if `msr` is not implemented: internal hardware state updates
    /// target registers the package declared at reset.
    pub fn store_internal(&mut self, msr: Msr, value: u64) {
        let slot = self
            .regs
            .get_mut(&msr)
            // Documented invariant (see `# Panics` above): internal stores
            // only target registers declared at reset.
            // plugvolt-lint: allow(no-unwrap-in-lib)
            .unwrap_or_else(|| panic!("internal store to unimplemented {msr}"));
        *slot = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ClampAbove {
        limit: u64,
    }

    impl MsrInterceptor for ClampAbove {
        fn name(&self) -> &str {
            "clamp-above"
        }
        fn on_write(&mut self, _msr: Msr, value: u64) -> WriteDisposition {
            if value > self.limit {
                WriteDisposition::Clamp(self.limit)
            } else {
                WriteDisposition::Allow
            }
        }
    }

    struct IgnoreOdd;

    impl MsrInterceptor for IgnoreOdd {
        fn name(&self) -> &str {
            "ignore-odd"
        }
        fn on_write(&mut self, _msr: Msr, value: u64) -> WriteDisposition {
            if value % 2 == 1 {
                WriteDisposition::Ignore
            } else {
                WriteDisposition::Allow
            }
        }
    }

    struct FaultAll;

    impl MsrInterceptor for FaultAll {
        fn name(&self) -> &str {
            "fault-all"
        }
        fn on_write(&mut self, _msr: Msr, _value: u64) -> WriteDisposition {
            WriteDisposition::Fault
        }
    }

    fn file() -> MsrFile {
        let mut f = MsrFile::new();
        f.implement(Msr::OC_MAILBOX, 0);
        f
    }

    #[test]
    fn unimplemented_accesses_gp() {
        let mut f = file();
        assert_eq!(
            f.rdmsr(Msr(0x1234)),
            Err(MsrError::GeneralProtection { msr: Msr(0x1234) })
        );
        assert_eq!(
            f.wrmsr(Msr(0x1234), 1),
            Err(MsrError::GeneralProtection { msr: Msr(0x1234) })
        );
    }

    #[test]
    fn plain_write_read() {
        let mut f = file();
        let out = f.wrmsr(Msr::OC_MAILBOX, 77).unwrap();
        assert_eq!(out, WriteOutcome::Written { stored: 77 });
        assert!(out.was_written());
        assert_eq!(f.rdmsr(Msr::OC_MAILBOX).unwrap(), 77);
    }

    #[test]
    fn clamp_interceptor_rewrites() {
        let mut f = file();
        f.add_interceptor(Box::new(ClampAbove { limit: 100 }));
        let out = f.wrmsr(Msr::OC_MAILBOX, 500).unwrap();
        assert_eq!(out, WriteOutcome::Written { stored: 100 });
        assert_eq!(f.rdmsr(Msr::OC_MAILBOX).unwrap(), 100);
    }

    #[test]
    fn ignore_interceptor_preserves_old_value() {
        let mut f = file();
        f.wrmsr(Msr::OC_MAILBOX, 42).unwrap();
        f.add_interceptor(Box::new(IgnoreOdd));
        let out = f.wrmsr(Msr::OC_MAILBOX, 43).unwrap();
        assert_eq!(out, WriteOutcome::Ignored);
        assert!(!out.was_written());
        assert_eq!(f.rdmsr(Msr::OC_MAILBOX).unwrap(), 42);
    }

    #[test]
    fn fault_interceptor_raises_gp() {
        let mut f = file();
        f.add_interceptor(Box::new(FaultAll));
        assert_eq!(
            f.wrmsr(Msr::OC_MAILBOX, 1),
            Err(MsrError::WriteFault {
                msr: Msr::OC_MAILBOX
            })
        );
    }

    #[test]
    fn chain_order_clamp_then_ignore() {
        let mut f = file();
        f.wrmsr(Msr::OC_MAILBOX, 42).unwrap();
        f.add_interceptor(Box::new(ClampAbove { limit: 101 }));
        f.add_interceptor(Box::new(IgnoreOdd));
        // 500 clamps to 101 (odd), which the second interceptor ignores.
        assert_eq!(
            f.wrmsr(Msr::OC_MAILBOX, 500).unwrap(),
            WriteOutcome::Ignored
        );
        assert_eq!(f.rdmsr(Msr::OC_MAILBOX).unwrap(), 42);
    }

    #[test]
    fn remove_interceptor_by_name() {
        let mut f = file();
        f.add_interceptor(Box::new(IgnoreOdd));
        assert!(f.has_interceptor("ignore-odd"));
        assert!(f.remove_interceptor("ignore-odd"));
        assert!(!f.has_interceptor("ignore-odd"));
        assert!(!f.remove_interceptor("ignore-odd"));
        assert!(f.wrmsr(Msr::OC_MAILBOX, 43).unwrap().was_written());
    }

    #[test]
    fn duplicate_names_all_removed_order_preserved() {
        let mut f = file();
        f.add_interceptor(Box::new(ClampAbove { limit: 100 }));
        f.add_interceptor(Box::new(IgnoreOdd));
        f.add_interceptor(Box::new(ClampAbove { limit: 50 }));
        assert_eq!(
            f.interceptor_names().collect::<Vec<_>>(),
            ["clamp-above", "ignore-odd", "clamp-above"]
        );
        // Removing a duplicated name drops every bearer; the survivor
        // keeps its chain position.
        assert!(f.remove_interceptor("clamp-above"));
        assert!(!f.has_interceptor("clamp-above"));
        assert_eq!(f.interceptor_names().collect::<Vec<_>>(), ["ignore-odd"]);
        // Neither clamp runs any more; the ignore still does.
        assert!(f.wrmsr(Msr::OC_MAILBOX, 500).unwrap().was_written());
        assert_eq!(f.rdmsr(Msr::OC_MAILBOX).unwrap(), 500);
        assert_eq!(
            f.wrmsr(Msr::OC_MAILBOX, 501).unwrap(),
            WriteOutcome::Ignored
        );
    }

    #[test]
    fn remove_while_iterating_names_is_safe() {
        // The classic hazard the name index must survive: walk a
        // snapshot of the chain and remove entries mid-walk. The cached
        // names make the snapshot cheap, and each removal keeps the
        // index and the chain consistent for the next step.
        let mut f = file();
        f.add_interceptor(Box::new(ClampAbove { limit: 100 }));
        f.add_interceptor(Box::new(IgnoreOdd));
        f.add_interceptor(Box::new(FaultAll));
        f.add_interceptor(Box::new(IgnoreOdd));
        let snapshot: Vec<String> = f.interceptor_names().map(str::to_owned).collect();
        assert_eq!(snapshot.len(), 4);
        for name in &snapshot {
            // Duplicates were bulk-removed by their first occurrence;
            // a second visit must report "nothing to remove" rather
            // than corrupt the index.
            let before = f.interceptor_names().count();
            let removed = f.remove_interceptor(name);
            assert_eq!(removed, f.interceptor_names().count() < before);
            assert!(!f.has_interceptor(name));
        }
        assert_eq!(f.interceptor_names().count(), 0);
        assert!(f.wrmsr(Msr::OC_MAILBOX, 77).unwrap().was_written());
    }

    #[test]
    fn store_internal_bypasses_interceptors() {
        let mut f = file();
        f.add_interceptor(Box::new(FaultAll));
        f.store_internal(Msr::OC_MAILBOX, 9);
        assert_eq!(f.rdmsr(Msr::OC_MAILBOX).unwrap(), 9);
    }

    #[test]
    #[should_panic(expected = "internal store to unimplemented")]
    fn store_internal_requires_implemented() {
        let mut f = file();
        f.store_internal(Msr(0x9999), 1);
    }

    #[test]
    fn reimplement_resets() {
        let mut f = file();
        f.wrmsr(Msr::OC_MAILBOX, 5).unwrap();
        f.implement(Msr::OC_MAILBOX, 0);
        assert_eq!(f.rdmsr(Msr::OC_MAILBOX).unwrap(), 0);
        f.unimplement(Msr::OC_MAILBOX);
        assert!(!f.is_implemented(Msr::OC_MAILBOX));
    }
}
