//! `MSR_DRAM_POWER_LIMIT` / `MSR_DRAM_POWER_INFO` clamp semantics.
//!
//! Sec. 5.2 of the paper proposes a hardware voltage-offset clamp with the
//! same semantics as the DRAM power-limit pair: software may request any
//! limit via `MSR_DRAM_POWER_LIMIT`, but values below the
//! `DRAM_MIN_PWR` floor advertised in `MSR_DRAM_POWER_INFO` are silently
//! *clamped* to the floor. We model that pair here (it doubles as a
//! regression test bed for the clamp behaviour reused by
//! [`crate::offset_limit`]).

use serde::{Deserialize, Serialize};

/// Power unit of the limit fields: 1/8 W.
pub const POWER_UNIT_EIGHTH_WATT: f64 = 0.125;

/// A decoded `MSR_DRAM_POWER_LIMIT` value (bits 14:0 limit, bit 15 enable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramPowerLimit {
    limit_units: u16, // 15 bits, 1/8 W
    enabled: bool,
}

impl DramPowerLimit {
    /// Creates a limit of `watts`, enabled.
    ///
    /// # Panics
    ///
    /// Panics if `watts` is negative or exceeds the 15-bit field (4095 W).
    #[must_use]
    pub fn new(watts: f64) -> Self {
        assert!(watts >= 0.0, "power must be non-negative");
        let units = (watts / POWER_UNIT_EIGHTH_WATT).round();
        assert!(units <= 0x7FFF as f64, "power {watts} W out of field");
        DramPowerLimit {
            limit_units: units as u16,
            enabled: true,
        }
    }

    /// The limit in watts.
    #[must_use]
    pub fn watts(self) -> f64 {
        f64::from(self.limit_units) * POWER_UNIT_EIGHTH_WATT
    }

    /// Whether limiting is enabled.
    #[must_use]
    pub fn is_enabled(self) -> bool {
        self.enabled
    }

    /// Encodes to the raw MSR value.
    #[must_use]
    pub fn encode(self) -> u64 {
        u64::from(self.limit_units) | (u64::from(self.enabled) << 15)
    }

    /// Decodes a raw MSR value.
    #[must_use]
    pub fn decode(raw: u64) -> Self {
        DramPowerLimit {
            limit_units: (raw & 0x7FFF) as u16,
            enabled: (raw >> 15) & 1 == 1,
        }
    }
}

/// A decoded `MSR_DRAM_POWER_INFO` value; we model only `DRAM_MIN_PWR`
/// (bits 30:16), the clamp floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramPowerInfo {
    min_units: u16, // 15 bits, 1/8 W
}

impl DramPowerInfo {
    /// Creates an info block advertising a minimum of `watts`.
    ///
    /// # Panics
    ///
    /// Panics if `watts` is negative or exceeds the 15-bit field.
    #[must_use]
    pub fn new(watts: f64) -> Self {
        assert!(watts >= 0.0, "power must be non-negative");
        let units = (watts / POWER_UNIT_EIGHTH_WATT).round();
        assert!(units <= 0x7FFF as f64, "power {watts} W out of field");
        DramPowerInfo {
            min_units: units as u16,
        }
    }

    /// The advertised minimum in watts.
    #[must_use]
    pub fn min_watts(self) -> f64 {
        f64::from(self.min_units) * POWER_UNIT_EIGHTH_WATT
    }

    /// Encodes to the raw MSR value.
    #[must_use]
    pub fn encode(self) -> u64 {
        u64::from(self.min_units) << 16
    }

    /// Decodes a raw MSR value.
    #[must_use]
    pub fn decode(raw: u64) -> Self {
        DramPowerInfo {
            min_units: ((raw >> 16) & 0x7FFF) as u16,
        }
    }

    /// Applies the hardware clamp: any requested limit below
    /// `DRAM_MIN_PWR` is raised to it. This is the exact behaviour the
    /// paper transplants onto voltage offsets.
    #[must_use]
    pub fn clamp(self, requested: DramPowerLimit) -> DramPowerLimit {
        DramPowerLimit {
            limit_units: requested.limit_units.max(self.min_units),
            enabled: requested.enabled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limit_round_trip() {
        let l = DramPowerLimit::new(22.5);
        let back = DramPowerLimit::decode(l.encode());
        assert_eq!(back, l);
        assert!((back.watts() - 22.5).abs() < 1e-12);
        assert!(back.is_enabled());
    }

    #[test]
    fn info_round_trip() {
        let i = DramPowerInfo::new(7.875);
        assert_eq!(DramPowerInfo::decode(i.encode()), i);
    }

    #[test]
    fn clamp_raises_low_requests() {
        let floor = DramPowerInfo::new(10.0);
        let clamped = floor.clamp(DramPowerLimit::new(2.0));
        assert!((clamped.watts() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn clamp_passes_high_requests() {
        let floor = DramPowerInfo::new(10.0);
        let passed = floor.clamp(DramPowerLimit::new(30.0));
        assert!((passed.watts() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn clamp_preserves_enable_bit() {
        let floor = DramPowerInfo::new(10.0);
        let mut req = DramPowerLimit::new(2.0);
        req.enabled = false;
        assert!(!floor.clamp(req).is_enabled());
    }

    #[test]
    fn fields_do_not_collide() {
        // Limit and info occupy disjoint raw bit ranges by design.
        let l = DramPowerLimit::new(100.0).encode();
        let i = DramPowerInfo::new(100.0).encode();
        assert_eq!(l & i, 0);
    }

    #[test]
    #[should_panic(expected = "out of field")]
    fn limit_overflow_panics() {
        let _ = DramPowerLimit::new(5_000.0);
    }
}
