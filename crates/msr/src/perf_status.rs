//! `IA32_PERF_STATUS` (0x198) and `IA32_PERF_CTL` (0x199) encodings.
//!
//! The countermeasure's polling loop reads 0x198 for the *current*
//! frequency/voltage pair (Algorithm 3 line 4), and the cpufreq scaling
//! driver writes ratio requests to 0x199. Layout (as on real Intel parts):
//!
//! - 0x198 bits 15:8 — current P-state ratio (× 100 MHz bus clock);
//! - 0x198 bits 47:32 — current core voltage in 1/8192 V units;
//! - 0x199 bits 15:8 — requested P-state ratio.

use serde::{Deserialize, Serialize};

/// Bus (BCLK) frequency that P-state ratios multiply, in MHz.
pub const BUS_CLOCK_MHZ: u32 = 100;

/// A decoded `IA32_PERF_STATUS` value.
///
/// # Examples
///
/// ```
/// use plugvolt_msr::perf_status::PerfStatus;
///
/// let s = PerfStatus::new(3_200, 1_050.0);
/// let raw = s.encode();
/// let back = PerfStatus::decode(raw);
/// assert_eq!(back.freq_mhz(), 3_200);
/// assert!((back.voltage_mv() - 1_050.0).abs() < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfStatus {
    ratio: u8,
    voltage_units: u16, // 1/8192 V
}

impl PerfStatus {
    /// Creates a status reporting `freq_mhz` (rounded down to a whole
    /// ratio) and `voltage_mv`.
    ///
    /// # Panics
    ///
    /// Panics if the frequency exceeds the 8-bit ratio field (25.5 GHz) or
    /// the voltage is negative or exceeds the 16-bit field (= 8 V).
    #[must_use]
    pub fn new(freq_mhz: u32, voltage_mv: f64) -> Self {
        let ratio = freq_mhz / BUS_CLOCK_MHZ;
        assert!(ratio <= 0xFF, "frequency {freq_mhz} MHz out of ratio field");
        assert!(
            (0.0..8_000.0).contains(&voltage_mv),
            "voltage {voltage_mv} mV out of field"
        );
        PerfStatus {
            ratio: ratio as u8,
            voltage_units: (voltage_mv * 8.192).round() as u16,
        }
    }

    /// Current core frequency in MHz (ratio × bus clock).
    #[must_use]
    pub fn freq_mhz(self) -> u32 {
        u32::from(self.ratio) * BUS_CLOCK_MHZ
    }

    /// Current core voltage in millivolts.
    #[must_use]
    pub fn voltage_mv(self) -> f64 {
        f64::from(self.voltage_units) / 8.192
    }

    /// Encodes to the raw 64-bit MSR value.
    #[must_use]
    pub fn encode(self) -> u64 {
        (u64::from(self.voltage_units) << 32) | (u64::from(self.ratio) << 8)
    }

    /// Decodes a raw 64-bit MSR value.
    #[must_use]
    pub fn decode(raw: u64) -> Self {
        PerfStatus {
            ratio: ((raw >> 8) & 0xFF) as u8,
            voltage_units: ((raw >> 32) & 0xFFFF) as u16,
        }
    }
}

/// Encodes an `IA32_PERF_CTL` frequency request.
///
/// # Panics
///
/// Panics if the frequency exceeds the ratio field.
#[must_use]
pub fn encode_perf_ctl(freq_mhz: u32) -> u64 {
    let ratio = freq_mhz / BUS_CLOCK_MHZ;
    assert!(ratio <= 0xFF, "frequency {freq_mhz} MHz out of ratio field");
    u64::from(ratio) << 8
}

/// Decodes the requested frequency (MHz) from an `IA32_PERF_CTL` value.
#[must_use]
pub fn decode_perf_ctl(raw: u64) -> u32 {
    (((raw >> 8) & 0xFF) as u32) * BUS_CLOCK_MHZ
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_field_round_trip() {
        for mhz in (400..=4_900).step_by(100) {
            let s = PerfStatus::new(mhz, 900.0);
            assert_eq!(PerfStatus::decode(s.encode()).freq_mhz(), mhz);
        }
    }

    #[test]
    fn frequency_truncates_to_ratio() {
        assert_eq!(PerfStatus::new(1_999, 900.0).freq_mhz(), 1_900);
    }

    #[test]
    fn voltage_resolution_is_sub_millivolt() {
        for mv in [650.0, 723.4, 1_052.17, 1_200.0] {
            let s = PerfStatus::new(2_000, mv);
            let back = PerfStatus::decode(s.encode());
            assert!((back.voltage_mv() - mv).abs() < 0.13, "mv={mv}");
        }
    }

    #[test]
    fn perf_ctl_round_trip() {
        for mhz in [400, 800, 2_600, 4_900] {
            assert_eq!(decode_perf_ctl(encode_perf_ctl(mhz)), mhz);
        }
    }

    #[test]
    fn fields_do_not_collide() {
        let s = PerfStatus::new(25_500, 7_999.0);
        let raw = s.encode();
        assert_eq!(PerfStatus::decode(raw).freq_mhz(), 25_500);
        assert!((PerfStatus::decode(raw).voltage_mv() - 7_999.0).abs() < 0.13);
    }

    #[test]
    #[should_panic(expected = "out of ratio field")]
    fn ratio_overflow_panics() {
        let _ = PerfStatus::new(30_000, 1_000.0);
    }

    #[test]
    #[should_panic(expected = "out of field")]
    fn voltage_overflow_panics() {
        let _ = PerfStatus::new(1_000, 9_000.0);
    }
}
