//! # plugvolt-msr
//!
//! Model-specific-register device model for the *Plug Your Volt*
//! (DAC 2024) reproduction: the software-visible interface through which
//! both the DVFS fault attacks and the countermeasure operate.
//!
//! - [`addr`] — the register addresses ([`addr::Msr`]);
//! - [`oc_mailbox`] — MSR 0x150, the overclocking-mailbox voltage-offset
//!   interface (the paper's Table 1 and Algorithm 1), including the
//!   per-plane offset encoding abused by Plundervolt/V0LTpwn;
//! - [`perf_status`] — MSR 0x198/0x199, the frequency/voltage status the
//!   countermeasure polls and the cpufreq control register;
//! - [`power_limit`] — the `MSR_DRAM_POWER_LIMIT`/`MSR_DRAM_POWER_INFO`
//!   clamp pair whose semantics Sec. 5.2 borrows;
//! - [`offset_limit`] — the hypothetical `MSR_VOLTAGE_OFFSET_LIMIT`
//!   hardware clamp built on those semantics;
//! - [`mod@file`] — the register file with `#GP` semantics and microcode
//!   write-intercept hooks (the Sec. 5.1 deployment point).
//!
//! # Examples
//!
//! Encode the paper's canonical undervolt request:
//!
//! ```
//! use plugvolt_msr::oc_mailbox::{encode_offset_request, OcRequest, Plane};
//!
//! // Algorithm 1 from the paper and the typed API agree bit-for-bit:
//! let raw = encode_offset_request(-150, 0);
//! assert_eq!(raw, OcRequest::write_offset(-150, Plane::Core).encode());
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod file;
pub mod oc_mailbox;
pub mod offset_limit;
pub mod perf_status;
pub mod power_limit;

/// Convenient glob-import of the commonly used names.
pub mod prelude {
    pub use crate::addr::Msr;
    pub use crate::file::{MsrError, MsrFile, MsrInterceptor, WriteDisposition, WriteOutcome};
    pub use crate::oc_mailbox::{OcRequest, Plane};
    pub use crate::offset_limit::VoltageOffsetLimit;
    pub use crate::perf_status::PerfStatus;
}
