//! Precomputed slack tables: the hot-path cache over Eq. 1.
//!
//! Every simulated batch (`run_batch_on_rails`, `run_imul_loop`) derives
//! the same three quantities from `(frequency, voltage)`: the path slack,
//! its [`TimingState`] classification and the per-instruction fault
//! probability. All three go through the alpha-power delay model
//! (`powf`) and the fault-band sigmoid (`exp`) — pure functions of the
//! grid point. The paper's S1 characterization (Algorithms 1–2) and the
//! S2 workload matrices sweep exactly the cartesian product
//! frequency-table × mailbox voltage steps, so the set of `(f, V)` pairs
//! the simulator can ever observe *on a settled rail* is finite and
//! known at boot: each table frequency × each OC-mailbox offset step
//! (1/1.024 mV granularity, see `OcRequest`), on both the core and the
//! cache nominal curves.
//!
//! [`SlackTable`] evaluates that grid once per process per model and
//! memoizes the result, turning the batch hot path into a `HashMap`
//! probe. **The table is a cache, never a semantic change**: every
//! stored value is produced by calling the *same* engine methods the
//! analytic path calls, keyed by the exact bit pattern of the voltage,
//! so a hit returns bit-identical slack/probability values and consumes
//! the RNG stream identically. Off-grid queries (mid-slew rails,
//! unit-varied specs, cross-frequency demand) miss the map and fall
//! back to the analytic path — correctness never depends on a hit.

use crate::exec::{ExecutionEngine, InstrClass};
use crate::freq::FreqMhz;
use crate::model::{CpuModel, CpuSpec};
use plugvolt_circuit::delay::{Millivolts, Picoseconds};
use plugvolt_circuit::multiplier::MultiplierUnit;
use plugvolt_circuit::timing::TimingState;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Deepest OC-mailbox offset the grid covers, in 1/1.024 mV units
/// (the mailbox encodes offsets as signed 11-bit values in 1/1024 V
/// steps; −512 units ≈ −500 mV, far past every model's crash region).
pub const MIN_OFFSET_UNITS: i16 = -512;

/// Offset steps per `(frequency, plane)` curve: `MIN_OFFSET_UNITS..=0`.
const OFFSET_SPAN: usize = -(MIN_OFFSET_UNITS as isize) as usize + 1;

/// Voltage planes each grid frequency carries (core, cache).
const PLANES: usize = 2;

/// Cached timing quantities for one instruction class (or one operand
/// class of the imul loop) at one grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassEntry {
    /// Eq. 1 slack, bit-identical to `ExecutionEngine::class_slack_ps`.
    pub slack_ps: Picoseconds,
    /// `FaultModel::classify(slack_ps)` precomputed.
    pub state: TimingState,
    /// `FaultModel::fault_probability(slack_ps)` precomputed.
    pub fault_p: f64,
}

/// All cached quantities for one `(frequency, voltage)` grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct GridEntry {
    /// Per-[`InstrClass`] entries, in [`InstrClass::ALL`] order
    /// (index with [`class_index`]).
    pub classes: [ClassEntry; 5],
    /// Per-operand-class entries of the EXECUTE-thread imul loop, in
    /// [`MultiplierUnit::IMUL_LOOP_CLASSES`] order.
    pub imul_ops: [ClassEntry; 3],
}

/// Index of `class` into [`GridEntry::classes`] ([`InstrClass::ALL`]
/// order).
#[must_use]
pub fn class_index(class: InstrClass) -> usize {
    match class {
        InstrClass::Imul => 0,
        InstrClass::Aesenc => 1,
        InstrClass::Fma => 2,
        InstrClass::AluAdd => 3,
        InstrClass::Load => 4,
    }
}

/// The precomputed slack table for one CPU model's base spec.
///
/// Storage is a dense direct-indexed array, not a hash map: the grid is
/// a perfect cartesian product (table frequency × plane × offset step),
/// so a lookup is a binary search over the (tiny, sorted) frequency list
/// followed by *deriving* the offset-unit index back from the voltage
/// and one array load. Each slot carries the exact bit pattern of the
/// voltage it was built for; a lookup only hits when the query voltage
/// matches those bits, which guarantees the cached values equal what
/// the analytic path would compute for that voltage, however the rail
/// arrived there. The hash-map probe this replaces cost as much as the
/// analytic math it was saving (SipHash over 12-byte keys, ~70 ns); the
/// indexed load is a few nanoseconds.
#[derive(Debug)]
pub struct SlackTable {
    /// Sorted table frequencies, in MHz.
    freqs: Vec<u32>,
    /// Per-`(frequency, plane)` nominal voltage (the `units == 0`
    /// curve value), indexed `freq_idx * PLANES + plane`. Used to
    /// derive the offset-unit index from a query voltage.
    bases: Vec<f64>,
    /// Exact voltage bits per slot, for hit verification.
    v_bits: Vec<u64>,
    /// Cached grid values, parallel to `v_bits`.
    entries: Vec<GridEntry>,
    build_ns: u64,
}

impl SlackTable {
    /// Evaluates the full grid for `spec`.
    ///
    /// The grid is every table frequency × every mailbox offset step in
    /// `[MIN_OFFSET_UNITS, 0]`, applied to both the core and the cache
    /// nominal curves — the exact voltage expressions the regulator
    /// targets in `retarget_rail`, reproduced term-for-term so the slot
    /// bits match.
    #[must_use]
    pub fn build(spec: &CpuSpec) -> Self {
        let start = std::time::Instant::now(); // plugvolt-lint: allow(no-wall-clock)
        let engine = ExecutionEngine::new(
            spec.multiplier(),
            spec.fault_model(),
            spec.t_setup_ps,
            spec.t_eps_ps,
        );
        let freqs: Vec<u32> = spec.freq_table.iter().map(FreqMhz::mhz).collect();
        debug_assert!(freqs.windows(2).all(|w| w[0] < w[1]));
        let mut bases = Vec::with_capacity(freqs.len() * PLANES);
        let mut v_bits = Vec::with_capacity(freqs.len() * PLANES * OFFSET_SPAN);
        let mut entries = Vec::with_capacity(freqs.len() * PLANES * OFFSET_SPAN);
        for f in spec.freq_table.iter() {
            bases.push(spec.nominal_voltage_mv(f));
            bases.push(spec.nominal_cache_voltage_mv(f));
            for plane in 0..PLANES {
                let base = bases[bases.len() - PLANES + plane];
                for units in MIN_OFFSET_UNITS..=0 {
                    // Same expression as CpuPackage::retarget_rail: the
                    // offset units are an i16 widened to f64, scaled by
                    // 1000/1024 mV per unit, added to the nominal curve.
                    let v_mv = base + f64::from(units) * 1000.0 / 1024.0;
                    v_bits.push(v_mv.to_bits());
                    entries.push(Self::grid_entry(&engine, f, v_mv));
                }
            }
        }
        let build_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        SlackTable {
            freqs,
            bases,
            v_bits,
            entries,
            build_ns,
        }
    }

    /// Computes one grid point *via the engine's own analytic methods*,
    /// so the cached bits are the analytic bits by construction.
    fn grid_entry(engine: &ExecutionEngine, f: FreqMhz, v_mv: Millivolts) -> GridEntry {
        let fm = engine.fault_model();
        let entry = |slack_ps: Picoseconds| ClassEntry {
            slack_ps,
            state: fm.classify(slack_ps),
            fault_p: fm.fault_probability(slack_ps),
        };
        let classes = InstrClass::ALL.map(|c| entry(engine.class_slack_ps(c, f, v_mv)));
        let budget = engine.budget(f);
        let imul_ops = MultiplierUnit::IMUL_LOOP_CLASSES
            .map(|(_, a, b)| entry(engine.multiplier().slack_ps(a, b, &budget, v_mv)));
        GridEntry { classes, imul_ops }
    }

    /// Looks up the grid point for `(f, v_mv)`, `None` when off-grid.
    ///
    /// The offset-unit index is derived arithmetically from the query
    /// voltage (`units ≈ (v − nominal) · 1024/1000`, rounded), then the
    /// slot's stored voltage bits are compared against the query bits.
    /// Rounding error in the derivation can only ever land on the
    /// *adjacent* slot, whose stored bits then differ — so a wrong
    /// index degrades to a miss (analytic fallback), never a wrong hit.
    #[inline]
    #[must_use]
    pub fn entry(&self, f: FreqMhz, v_mv: Millivolts) -> Option<&GridEntry> {
        let fi = self.freqs.binary_search(&f.mhz()).ok()?;
        let bits = v_mv.to_bits();
        for plane in 0..PLANES {
            let units = (v_mv - self.bases[fi * PLANES + plane]) * 1024.0 / 1000.0;
            let units = units.round();
            if units < f64::from(MIN_OFFSET_UNITS) || units > 0.0 {
                continue;
            }
            #[allow(clippy::cast_possible_truncation)]
            let step = (units as i32 - i32::from(MIN_OFFSET_UNITS)) as usize;
            let slot = (fi * PLANES + plane) * OFFSET_SPAN + step;
            if self.v_bits[slot] == bits {
                return Some(&self.entries[slot]);
            }
        }
        None
    }

    /// Number of `(frequency, voltage)` grid points stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty (never true for a built table).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Wall-clock nanoseconds the one-time build took. Telemetry-only:
    /// this is the single host-dependent value the table carries, and it
    /// never feeds back into simulation results.
    #[must_use]
    pub fn build_ns(&self) -> u64 {
        self.build_ns
    }
}

/// Process-wide kill switch for slack-table attachment (default: on).
///
/// The bench harness flips this off to time the pure analytic path; the
/// equivalence tests prefer the racefree per-machine
/// `CpuPackage::set_slack_table(None)` instead.
static TABLES_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables automatic slack-table attachment at machine boot.
pub fn set_tables_enabled(enabled: bool) {
    TABLES_ENABLED.store(enabled, Ordering::SeqCst);
}

/// Whether machine boots currently attach the shared slack table.
#[must_use]
pub fn tables_enabled() -> bool {
    TABLES_ENABLED.load(Ordering::SeqCst)
}

/// The per-model memoized store, keyed by spec name (mirrors the quick
/// characterization-map store in `plugvolt-bench`).
fn table_store() -> &'static Mutex<BTreeMap<&'static str, Arc<SlackTable>>> {
    static STORE: OnceLock<Mutex<BTreeMap<&'static str, Arc<SlackTable>>>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// The shared, memoized slack table for `model`'s base spec: built on
/// first request, an `Arc` clone afterwards.
#[must_use]
pub fn shared_table(model: CpuModel) -> Arc<SlackTable> {
    let spec = model.spec();
    let mut store = table_store().lock().expect("slack-table store poisoned");
    Arc::clone(
        store
            .entry(spec.name)
            .or_insert_with(|| Arc::new(SlackTable::build(&spec))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_table_frequency() {
        let spec = CpuModel::SkyLake.spec();
        let table = SlackTable::build(&spec);
        for f in spec.freq_table.iter() {
            let v = spec.nominal_voltage_mv(f);
            assert!(table.entry(f, v).is_some(), "missing nominal point at {f}");
            let deepest = v + f64::from(MIN_OFFSET_UNITS) * 1000.0 / 1024.0;
            assert!(table.entry(f, deepest).is_some(), "missing −500 mV at {f}");
        }
        // 29 frequencies × 513 offsets × 2 planes, minus any bit-exact
        // collisions between the two curves (there are none: the cache
        // curve sits 20 mV below the core curve).
        assert_eq!(table.len(), 29 * 513 * 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn off_grid_queries_miss() {
        let spec = CpuModel::CometLake.spec();
        let table = SlackTable::build(&spec);
        let f = spec.base_freq;
        // A mid-slew voltage between two grid steps.
        let v = spec.nominal_voltage_mv(f) - 0.123_456_789;
        assert!(table.entry(f, v).is_none());
        // An off-table frequency.
        assert!(table
            .entry(FreqMhz(1_850), spec.nominal_voltage_mv(f))
            .is_none());
    }

    #[test]
    fn entries_match_the_analytic_path_bit_for_bit() {
        let spec = CpuModel::KabyLakeR.spec();
        let table = SlackTable::build(&spec);
        let engine = ExecutionEngine::new(
            spec.multiplier(),
            spec.fault_model(),
            spec.t_setup_ps,
            spec.t_eps_ps,
        );
        let f = spec.base_freq;
        for units in [-512i16, -300, -150, -1, 0] {
            let v = spec.nominal_voltage_mv(f) + f64::from(units) * 1000.0 / 1024.0;
            let entry = table.entry(f, v).expect("grid point present");
            for class in InstrClass::ALL {
                let cached = entry.classes[class_index(class)];
                let slack = engine.class_slack_ps(class, f, v);
                assert_eq!(cached.slack_ps.to_bits(), slack.to_bits());
                assert_eq!(cached.state, engine.fault_model().classify(slack));
                assert_eq!(
                    cached.fault_p.to_bits(),
                    engine.fault_model().fault_probability(slack).to_bits()
                );
            }
            for (i, (_, a, b)) in MultiplierUnit::IMUL_LOOP_CLASSES.iter().enumerate() {
                let slack = engine.multiplier().slack_ps(*a, *b, &engine.budget(f), v);
                assert_eq!(entry.imul_ops[i].slack_ps.to_bits(), slack.to_bits());
            }
        }
    }

    #[test]
    fn shared_table_is_memoized() {
        let a = shared_table(CpuModel::SkyLake);
        let b = shared_table(CpuModel::SkyLake);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.build_ns(), b.build_ns());
    }
}
