//! The three evaluated CPU generations and their physical parameters.
//!
//! The paper characterizes Intel Sky Lake (i5-6500, µcode 0xf0), Kaby
//! Lake R (i5-8250U, µcode 0xf4) and Comet Lake (i7-10510U, µcode 0xf4).
//! [`CpuSpec`] carries everything the simulation needs: the frequency
//! table, the nominal voltage/frequency curve, flip-flop timing overheads,
//! the process parameters of the delay model and the vendor guardband the
//! multiplier datapath is calibrated against.

use crate::freq::{FreqMhz, FreqTable};
use plugvolt_circuit::delay::AlphaPowerModel;
use plugvolt_circuit::fault::FaultModel;
use plugvolt_circuit::multiplier::MultiplierUnit;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The CPU generations evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpuModel {
    /// Intel Core i5-6500 @ 3.20 GHz, microcode 0xf0.
    SkyLake,
    /// Intel Core i5-8250U @ 1.60 GHz, microcode 0xf4.
    KabyLakeR,
    /// Intel Core i7-10510U @ 1.80 GHz, microcode 0xf4.
    CometLake,
}

impl CpuModel {
    /// All three evaluated generations.
    pub const ALL: [CpuModel; 3] = [CpuModel::SkyLake, CpuModel::KabyLakeR, CpuModel::CometLake];

    /// The full specification for this model.
    #[must_use]
    pub fn spec(self) -> CpuSpec {
        match self {
            CpuModel::SkyLake => CpuSpec {
                model: self,
                name: "Intel(R) Core(TM) i5-6500 CPU @ 3.20GHz",
                codename: "Sky Lake",
                microcode: 0xf0,
                cores: 4,
                base_freq: FreqMhz(3_200),
                freq_table: FreqTable::new(FreqMhz(800), FreqMhz(3_600), 100),
                vf_v0_mv: 628.6,
                vf_slope_mv_per_mhz: 0.1643,
                t_setup_ps: 35.0,
                t_eps_ps: 15.0,
                vth_mv: 420.0,
                alpha: 1.35,
                guardband_mv: 160.0,
                fault_band_ps: 0.1,
                crash_margin_ps: 8.0,
            },
            CpuModel::KabyLakeR => CpuSpec {
                model: self,
                name: "Intel(R) Core(TM) i5-8250U CPU @ 1.60GHz",
                codename: "Kaby Lake R",
                microcode: 0xf4,
                cores: 4,
                base_freq: FreqMhz(1_600),
                freq_table: FreqTable::new(FreqMhz(400), FreqMhz(3_400), 100),
                vf_v0_mv: 689.7,
                vf_slope_mv_per_mhz: 0.1383,
                t_setup_ps: 32.0,
                t_eps_ps: 14.0,
                vth_mv: 410.0,
                alpha: 1.40,
                guardband_mv: 140.0,
                fault_band_ps: 0.1,
                crash_margin_ps: 7.0,
            },
            CpuModel::CometLake => CpuSpec {
                model: self,
                name: "Intel(R) Core(TM) i7-10510U CPU @ 1.80GHz",
                codename: "Comet Lake",
                microcode: 0xf4,
                cores: 4,
                base_freq: FreqMhz(1_800),
                freq_table: FreqTable::new(FreqMhz(400), FreqMhz(4_900), 100),
                vf_v0_mv: 709.1,
                vf_slope_mv_per_mhz: 0.1022,
                t_setup_ps: 30.0,
                t_eps_ps: 13.0,
                vth_mv: 400.0,
                alpha: 1.45,
                guardband_mv: 155.0,
                fault_band_ps: 0.1,
                crash_margin_ps: 8.0,
            },
        }
    }
}

impl fmt::Display for CpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec().codename)
    }
}

/// Full physical and architectural specification of a CPU model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Which generation this is.
    pub model: CpuModel,
    /// Marketing name string (what `/proc/cpuinfo` would report).
    pub name: &'static str,
    /// Intel codename.
    pub codename: &'static str,
    /// Microcode revision loaded at reset.
    pub microcode: u32,
    /// Physical core count.
    pub cores: usize,
    /// Base (non-turbo) frequency.
    pub base_freq: FreqMhz,
    /// The permissible frequency table.
    pub freq_table: FreqTable,
    /// V/F curve intercept: nominal voltage at 0 MHz (extrapolated), mV.
    pub vf_v0_mv: f64,
    /// V/F curve slope, mV per MHz.
    pub vf_slope_mv_per_mhz: f64,
    /// Capture flip-flop setup time, ps.
    pub t_setup_ps: f64,
    /// Worst-case clock uncertainty, ps.
    pub t_eps_ps: f64,
    /// Process threshold voltage, mV.
    pub vth_mv: f64,
    /// Alpha-power-law index of the process.
    pub alpha: f64,
    /// Vendor guardband: at the table's maximum frequency, the nominal
    /// voltage sits this far above the analytic fault onset.
    pub guardband_mv: f64,
    /// Logistic fault-band width (ps) of the process.
    pub fault_band_ps: f64,
    /// Crash margin (ps) past zero slack.
    pub crash_margin_ps: f64,
}

impl CpuSpec {
    /// Nominal (fused V/F-curve) core voltage at frequency `f`, in mV.
    #[must_use]
    pub fn nominal_voltage_mv(&self, f: FreqMhz) -> f64 {
        self.vf_v0_mv + self.vf_slope_mv_per_mhz * f64::from(f.mhz())
    }

    /// The stochastic fault model of this process.
    #[must_use]
    pub fn fault_model(&self) -> FaultModel {
        FaultModel::new(self.fault_band_ps, self.crash_margin_ps)
    }

    /// The calibrated `imul` datapath of this part.
    ///
    /// Calibration anchors the worst-case (full-width) path so it consumes
    /// exactly the available budget at the **maximum table frequency**
    /// when undervolted `guardband_mv` below nominal: i.e. at `f_max` the
    /// analytic fault onset sits `guardband_mv` under the V/F curve, the
    /// way vendors provision guardbands. Onsets at other frequencies then
    /// *emerge* from the alpha-power physics.
    #[must_use]
    pub fn multiplier(&self) -> MultiplierUnit {
        let f_max = self.freq_table.max();
        let avail_ps = f_max.period_ps() - self.t_setup_ps - self.t_eps_ps;
        let anchor_v_mv = self.nominal_voltage_mv(f_max) - self.guardband_mv;
        let wire_ps = 10.0;
        // Full-width depth used by MultiplierUnit: base 6 + extra 15.5;
        // the clock-to-Q flop is worth ≈ 2.2 gate delays.
        let full_depth = 6.0 + 15.5;
        let gate_ps = (avail_ps - wire_ps) / (full_depth + 2.2);
        let gate = AlphaPowerModel::calibrated(gate_ps, anchor_v_mv, self.vth_mv, self.alpha);
        let clk_to_q =
            AlphaPowerModel::calibrated(2.2 * gate_ps, anchor_v_mv, self.vth_mv, self.alpha);
        MultiplierUnit::new(gate, clk_to_q, wire_ps, 6.0, 15.5)
    }

    /// Lowest voltage at which the package stays alive at all (below this
    /// the VR cuts out regardless of timing), in mV.
    #[must_use]
    pub fn absolute_min_voltage_mv(&self) -> f64 {
        self.vth_mv + 30.0
    }

    /// Applies deterministic die-to-die process variation, yielding the
    /// spec of physical *unit* `unit` of this generation. Guardband,
    /// threshold voltage and the V/F intercept each jitter by a few
    /// millivolts — enough that two units of the same SKU have visibly
    /// different safe/unsafe maps, as real silicon does.
    #[must_use]
    pub fn with_unit_variation(mut self, unit: u64) -> CpuSpec {
        use plugvolt_des::rng::SimRng;
        let mut rng = SimRng::from_seed_label(unit, "die-to-die-variation");
        self.guardband_mv = (self.guardband_mv + 6.0 * rng.gaussian()).max(60.0);
        self.vth_mv = (self.vth_mv + 4.0 * rng.gaussian()).max(300.0);
        self.vf_v0_mv += 3.0 * rng.gaussian();
        self
    }

    /// Nominal cache-plane voltage at frequency `f`, in mV. The cache
    /// arrays run on their own plane (Table 1 plane 2), fused slightly
    /// below the core plane on these parts.
    #[must_use]
    pub fn nominal_cache_voltage_mv(&self, f: FreqMhz) -> f64 {
        self.nominal_voltage_mv(f) - 20.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plugvolt_circuit::timing::TimingBudget;

    #[test]
    fn specs_match_paper_hardware() {
        let s = CpuModel::SkyLake.spec();
        assert_eq!(s.microcode, 0xf0);
        assert!(s.name.contains("i5-6500"));
        let k = CpuModel::KabyLakeR.spec();
        assert_eq!(k.microcode, 0xf4);
        assert!(k.name.contains("i5-8250U"));
        let c = CpuModel::CometLake.spec();
        assert_eq!(c.microcode, 0xf4);
        assert!(c.name.contains("i7-10510U"));
    }

    #[test]
    fn base_frequency_in_table() {
        for m in CpuModel::ALL {
            let s = m.spec();
            assert!(s.freq_table.contains(s.base_freq), "{m}");
        }
    }

    #[test]
    fn vf_curve_is_increasing_and_sane() {
        for m in CpuModel::ALL {
            let s = m.spec();
            let v_min = s.nominal_voltage_mv(s.freq_table.min());
            let v_max = s.nominal_voltage_mv(s.freq_table.max());
            assert!(v_min < v_max, "{m}");
            assert!((700.0..800.0).contains(&v_min), "{m}: v_min={v_min}");
            assert!((1_000.0..1_300.0).contains(&v_max), "{m}: v_max={v_max}");
        }
    }

    #[test]
    fn guardband_calibration_anchors_fault_onset() {
        for m in CpuModel::ALL {
            let s = m.spec();
            let mul = s.multiplier();
            let f_max = s.freq_table.max();
            let budget = TimingBudget::for_frequency_mhz(f_max.mhz(), s.t_setup_ps, s.t_eps_ps);
            let v_onset = s.nominal_voltage_mv(f_max) - s.guardband_mv;
            let slack = mul.slack_ps(u64::MAX, u64::MAX, &budget, v_onset);
            assert!(slack.abs() < 0.5, "{m}: slack at anchor = {slack}");
            // At nominal there is real margin.
            let nominal_slack =
                mul.slack_ps(u64::MAX, u64::MAX, &budget, s.nominal_voltage_mv(f_max));
            assert!(nominal_slack > 15.0, "{m}: nominal slack = {nominal_slack}");
        }
    }

    #[test]
    fn every_table_frequency_is_safe_at_nominal() {
        for m in CpuModel::ALL {
            let s = m.spec();
            let mul = s.multiplier();
            let fm = s.fault_model();
            for f in s.freq_table.iter() {
                let budget = TimingBudget::for_frequency_mhz(f.mhz(), s.t_setup_ps, s.t_eps_ps);
                let slack = mul.slack_ps(u64::MAX, u64::MAX, &budget, s.nominal_voltage_mv(f));
                assert_eq!(
                    fm.classify(slack),
                    plugvolt_circuit::timing::TimingState::Safe,
                    "{m} at {f}: slack={slack}"
                );
            }
        }
    }

    #[test]
    fn models_have_distinct_characterizations() {
        // The three generations must not collapse onto the same curve.
        let onsets: Vec<f64> = CpuModel::ALL
            .iter()
            .map(|m| {
                let s = m.spec();
                let mul = s.multiplier();
                let f = FreqMhz(2_000);
                let budget = TimingBudget::for_frequency_mhz(f.mhz(), s.t_setup_ps, s.t_eps_ps);
                // Scan for the fault-onset offset at 2 GHz.
                let nominal = s.nominal_voltage_mv(f);
                let mut offset = 0.0;
                while budget.slack_ps(mul.worst_path_delay_ps(nominal + offset)) > 0.0 {
                    offset -= 1.0;
                    assert!(offset > -500.0, "{m}: no onset found");
                }
                offset
            })
            .collect();
        assert!(
            (onsets[0] - onsets[1]).abs() > 2.0 || (onsets[1] - onsets[2]).abs() > 2.0,
            "onsets identical: {onsets:?}"
        );
    }

    #[test]
    fn unit_variation_is_deterministic_and_distinct() {
        let base = CpuModel::CometLake.spec();
        let u0 = base.clone().with_unit_variation(0);
        let u0_again = CpuModel::CometLake.spec().with_unit_variation(0);
        assert_eq!(u0, u0_again, "same unit, same silicon");
        let u1 = base.clone().with_unit_variation(1);
        assert_ne!(u0, u1, "different dies differ");
        // Variation stays within sane bounds.
        assert!((u0.guardband_mv - base.guardband_mv).abs() < 30.0);
        assert!((u0.vth_mv - base.vth_mv).abs() < 20.0);
    }

    #[test]
    fn display_uses_codename() {
        assert_eq!(CpuModel::SkyLake.to_string(), "Sky Lake");
        assert_eq!(CpuModel::KabyLakeR.to_string(), "Kaby Lake R");
        assert_eq!(CpuModel::CometLake.to_string(), "Comet Lake");
    }
}
