//! Package energy accounting (RAPL-style).
//!
//! The paper's motivation is energy: "below-par energy management
//! decisions increase power consumption … impact battery life". This
//! module quantifies that story. Dynamic power follows the standard
//! CMOS model `P_dyn = α · C_eff · V² · f` per running core; idle
//! C-states gate most of it; static leakage rides on top. The
//! accumulated energy is exposed the way Linux reads it — through the
//! RAPL MSR `MSR_PKG_ENERGY_STATUS` (0x611), a wrapping 32-bit counter
//! in 2⁻¹⁶ J units — so the "how many joules does denying undervolting
//! cost" question is answerable in-simulation.

use serde::{Deserialize, Serialize};

/// `MSR_PKG_ENERGY_STATUS` energy unit: 2⁻¹⁶ J ≈ 15.3 µJ.
pub const RAPL_UNIT_J: f64 = 1.0 / 65_536.0;

/// Per-core power model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Effective switched capacitance per core, farads (α folded in).
    pub c_eff_f: f64,
    /// Static (leakage) power per running core, watts.
    pub static_w: f64,
    /// Fraction of static power still burned in a C-state.
    pub idle_static_fraction: f64,
}

impl Default for EnergyModel {
    /// Calibrated so a 4-core mobile part at base frequency and nominal
    /// voltage draws ≈ 15 W package power (the i7-10510U's TDP class).
    fn default() -> Self {
        EnergyModel {
            c_eff_f: 2.5e-9,
            static_w: 0.5,
            idle_static_fraction: 0.15,
        }
    }
}

impl EnergyModel {
    /// Instantaneous power of one core, watts.
    ///
    /// `v_mv` is the rail voltage, `freq_mhz` the core clock, `running`
    /// whether the core is in a P-state.
    #[must_use]
    pub fn core_power_w(&self, v_mv: f64, freq_mhz: u32, running: bool) -> f64 {
        if !running {
            return self.static_w * self.idle_static_fraction;
        }
        let v = v_mv / 1000.0;
        self.c_eff_f * v * v * f64::from(freq_mhz) * 1e6 + self.static_w
    }
}

/// A running energy integral with lazy checkpointing.
///
/// Callers checkpoint on every operating-point change (frequency,
/// offset, idle transitions); between checkpoints power is treated as
/// constant at the checkpoint conditions, which is exact for stable
/// operation and a short-segment approximation across VR ramps.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyMeter {
    accumulated_j: f64,
}

impl EnergyMeter {
    /// Adds `power_w` sustained for `dt_s` seconds.
    pub fn accumulate(&mut self, power_w: f64, dt_s: f64) {
        self.accumulated_j += power_w * dt_s.max(0.0);
    }

    /// Total energy so far, joules.
    #[must_use]
    pub fn joules(&self) -> f64 {
        self.accumulated_j
    }

    /// The RAPL counter view: wrapping 32-bit count of 2⁻¹⁶ J units.
    #[must_use]
    pub fn rapl_counter(&self) -> u32 {
        ((self.accumulated_j / RAPL_UNIT_J) as u64 & 0xFFFF_FFFF) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_power_is_tdp_class_at_base() {
        let m = EnergyModel::default();
        // 4 cores at 1.8 GHz, 893 mV (Comet Lake base point).
        let p = 4.0 * m.core_power_w(893.0, 1_800, true);
        assert!((12.0..20.0).contains(&p), "package power {p} W");
    }

    #[test]
    fn undervolting_saves_quadratically() {
        let m = EnergyModel::default();
        let nominal = m.core_power_w(900.0, 2_000, true) - m.static_w;
        let under = m.core_power_w(820.0, 2_000, true) - m.static_w;
        let ratio = under / nominal;
        let expect = (820.0f64 / 900.0).powi(2);
        assert!((ratio - expect).abs() < 1e-9, "ratio {ratio} vs {expect}");
    }

    #[test]
    fn idle_power_is_a_trickle() {
        let m = EnergyModel::default();
        let idle = m.core_power_w(700.0, 1_800, false);
        let busy = m.core_power_w(700.0, 1_800, true);
        assert!(idle < busy / 20.0, "idle {idle} vs busy {busy}");
    }

    #[test]
    fn meter_integrates_and_wraps_to_rapl_units() {
        let mut e = EnergyMeter::default();
        e.accumulate(15.0, 2.0);
        assert!((e.joules() - 30.0).abs() < 1e-12);
        assert_eq!(e.rapl_counter(), (30.0 / RAPL_UNIT_J) as u32);
        // Negative durations are clamped.
        e.accumulate(100.0, -5.0);
        assert!((e.joules() - 30.0).abs() < 1e-12);
    }
}
