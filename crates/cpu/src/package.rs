//! The CPU package: cores, MSR file, voltage regulator, microcode and the
//! execution engine, wired together.
//!
//! This is the hardware the rest of the stack runs on. Software interacts
//! with it exactly the way the paper's attacks and countermeasure do — via
//! `rdmsr`/`wrmsr` (0x150 undervolting, 0x198 status, 0x199 frequency) —
//! while the package internally enforces the physics: offsets move the
//! rail through the slew-limited VR, and execution faults or crashes
//! according to Eq. 1 at the *actual* rail voltage.

use crate::core::{Core, CoreId};
use crate::energy::{EnergyMeter, EnergyModel};
use crate::exec::{BatchOutcome, ExecutionEngine, InstrClass, Rails};
use crate::freq::FreqMhz;
use crate::microcode::{MicrocodeUpdate, SequencerHook};
use crate::model::{CpuModel, CpuSpec};
use crate::vr::VoltageRegulator;

/// Latency between an accepted mailbox (0x150) write and the rail
/// beginning to move: firmware mailbox processing plus VR command
/// turnaround. Plundervolt reports "the system takes some time for the
/// scaled voltage to apply"; attacks wait on this order before probing.
pub const MAILBOX_SETTLE: SimDuration = SimDuration::from_micros(800);

/// Latency of hardware-managed P-state voltage tracking (fast path).
pub const PSTATE_SETTLE: SimDuration = SimDuration::from_micros(10);
use plugvolt_circuit::multiplier::MulExecution;
use plugvolt_des::rng::SimRng;
use plugvolt_des::time::{SimDuration, SimTime};
use plugvolt_msr::addr::Msr;
use plugvolt_msr::file::{MsrError, MsrFile, WriteOutcome};
use plugvolt_msr::oc_mailbox::{OcRequest, Plane};
use plugvolt_msr::offset_limit::VoltageOffsetLimit;
use plugvolt_msr::perf_status::{decode_perf_ctl, PerfStatus};
use plugvolt_telemetry::{MetricKey, Sink, TelemetryEvent};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::fmt;
use std::sync::Arc;

/// Errors surfaced by package operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PackageError {
    /// The package has crashed (deep timing violation or rail collapse)
    /// and must be [`reset`](CpuPackage::reset).
    Crashed,
    /// An MSR access fault.
    Msr(MsrError),
    /// The core id does not exist on this package.
    NoSuchCore(CoreId),
}

impl fmt::Display for PackageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackageError::Crashed => write!(f, "package crashed; reset required"),
            PackageError::Msr(e) => write!(f, "{e}"),
            PackageError::NoSuchCore(c) => write!(f, "no such core {c:?}"),
        }
    }
}

impl std::error::Error for PackageError {}

impl From<MsrError> for PackageError {
    fn from(e: MsrError) -> Self {
        PackageError::Msr(e)
    }
}

/// A simulated CPU package of one of the paper's three generations.
///
/// # Examples
///
/// ```
/// use plugvolt_cpu::package::CpuPackage;
/// use plugvolt_cpu::model::CpuModel;
/// use plugvolt_cpu::core::CoreId;
/// use plugvolt_des::time::SimTime;
/// use plugvolt_msr::addr::Msr;
/// use plugvolt_msr::perf_status::PerfStatus;
///
/// let mut cpu = CpuPackage::new(CpuModel::CometLake, 42);
/// let now = SimTime::ZERO;
/// let raw = cpu.rdmsr(now, CoreId(0), Msr::IA32_PERF_STATUS)?;
/// let status = PerfStatus::decode(raw);
/// assert_eq!(status.freq_mhz(), 1_800); // base frequency
/// # Ok::<(), plugvolt_cpu::package::PackageError>(())
/// ```
pub struct CpuPackage {
    spec: CpuSpec,
    cores: Vec<Core>,
    msrs: MsrFile,
    core_vr: VoltageRegulator,
    cache_vr: VoltageRegulator,
    /// Last accepted mailbox offset per plane, in 1/1024 V units.
    plane_offset_units: [i16; 5],
    /// When the offset of each plane last changed through an accepted
    /// mailbox write — the "unsafe-state entry" instant the
    /// countermeasure's detection-latency metric is measured from.
    plane_offset_written_at: [Option<SimTime>; 5],
    /// When each core's frequency last *changed* through a P-state
    /// write. Together with [`Self::plane_offset_written_at`] this
    /// dates the entry into an unsafe V/F state: a CLKSCREW-style
    /// campaign leaves a standing offset and makes it unsafe much
    /// later by escalating the clock.
    core_pstate_changed_at: Vec<Option<SimTime>>,
    /// Plane whose offset the mailbox response register currently holds
    /// (set by the last read/write command, like the real protocol).
    mailbox_read_plane: Plane,
    ocm_enabled: bool,
    microcode_rev: u32,
    loaded_updates: Vec<MicrocodeUpdate>,
    offset_limit: VoltageOffsetLimit,
    crashed: bool,
    engine: ExecutionEngine,
    rng: SimRng,
    mailbox_writes_ignored: u64,
    energy_model: EnergyModel,
    energy: EnergyMeter,
    energy_checkpoint: SimTime,
    telemetry: Sink,
    /// Slack-table hit/fallback totals already flushed to the sink, so
    /// repeated publishes only add the delta.
    slack_stats_flushed: Cell<(u64, u64)>,
    /// Per-core hot-path counters, batched in `Cell`s and flushed to
    /// the sink only at publish time (see [`CoreHotCounters`]).
    hot: Vec<CoreHotCounters>,
}

/// The per-core counters bumped on the simulator's hottest paths
/// (every `rdmsr`/`wrmsr` plus the kernel's per-access cost
/// accounting). Kept in plain `Cell`s so the access path never touches
/// the allocating registry; [`CpuPackage::publish_hot_counters`]
/// flushes deltas under the same metric keys the per-access path used,
/// so published totals are bit-identical either way.
#[derive(Debug, Default)]
struct CoreHotCounters {
    rdmsr: Cell<u64>,
    wrmsr: Cell<u64>,
    access_cost_ps: Cell<u64>,
    stolen_ps: Cell<u64>,
    /// Snapshot of the four counters at the last flush (same order as
    /// [`HOT_COUNTER_KEYS`]), so repeated publishes add only deltas.
    flushed: Cell<[u64; 4]>,
}

/// `(component, name)` pairs of the batched hot counters, in the order
/// [`CoreHotCounters::flushed`] snapshots them.
const HOT_COUNTER_KEYS: [(&str, &str); 4] = [
    ("msr", "rdmsr"),
    ("msr", "wrmsr"),
    ("msr", "access_cost_ps"),
    ("kernel", "stolen_ps"),
];

impl fmt::Debug for CpuPackage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CpuPackage")
            .field("model", &self.spec.model)
            .field("cores", &self.cores.len())
            .field("microcode", &format_args!("{:#x}", self.microcode_rev))
            .field("ocm_enabled", &self.ocm_enabled)
            .field("crashed", &self.crashed)
            .finish()
    }
}

impl CpuPackage {
    /// Powers on a package of the given model with a deterministic seed.
    #[must_use]
    pub fn new(model: CpuModel, seed: u64) -> Self {
        Self::from_spec(model.spec(), seed)
    }

    /// Powers on physical *unit* `unit` of the model — same SKU,
    /// die-to-die process variation applied.
    #[must_use]
    pub fn new_unit(model: CpuModel, seed: u64, unit: u64) -> Self {
        Self::from_spec(model.spec().with_unit_variation(unit), seed)
    }

    /// Powers on a package from an explicit spec.
    #[must_use]
    pub fn from_spec(spec: CpuSpec, seed: u64) -> Self {
        let mut engine = ExecutionEngine::new(
            spec.multiplier(),
            spec.fault_model(),
            spec.t_setup_ps,
            spec.t_eps_ps,
        );
        // Base-spec packages get the shared precomputed slack table (a
        // pure cache — see `crate::slack`). Unit-varied specs have their
        // own calibration and stay on the analytic path.
        if crate::slack::tables_enabled() && spec == spec.model.spec() {
            engine.set_slack_table(Some(crate::slack::shared_table(spec.model)));
        }
        let cores = (0..spec.cores)
            .map(|i| Core::new(CoreId(i), spec.base_freq))
            .collect();
        let nominal = spec.nominal_voltage_mv(spec.base_freq);
        let nominal_cache = spec.nominal_cache_voltage_mv(spec.base_freq);
        let mut pkg = CpuPackage {
            core_vr: VoltageRegulator::new(nominal, MAILBOX_SETTLE, 8.0 /* mV/µs */),
            cache_vr: VoltageRegulator::new(nominal_cache, MAILBOX_SETTLE, 8.0),
            cores,
            mailbox_read_plane: Plane::Core,
            msrs: MsrFile::new(),
            plane_offset_units: [0; 5],
            plane_offset_written_at: [None; 5],
            core_pstate_changed_at: vec![None; spec.cores],
            ocm_enabled: true,
            microcode_rev: spec.microcode,
            loaded_updates: Vec::new(),
            offset_limit: VoltageOffsetLimit::disabled(),
            crashed: false,
            engine,
            rng: SimRng::from_seed_label(seed, "cpu-package"),
            mailbox_writes_ignored: 0,
            energy_model: EnergyModel::default(),
            energy: EnergyMeter::default(),
            energy_checkpoint: SimTime::ZERO,
            telemetry: Sink::new(),
            slack_stats_flushed: Cell::new((0, 0)),
            hot: (0..spec.cores)
                .map(|_| CoreHotCounters::default())
                .collect(),
            spec,
        };
        pkg.implement_msrs();
        pkg
    }

    fn implement_msrs(&mut self) {
        self.msrs.implement(Msr::OC_MAILBOX, 0);
        self.msrs.implement(Msr::IA32_PERF_STATUS, 0);
        self.msrs.implement(Msr::IA32_PERF_CTL, 0);
        self.msrs
            .implement(Msr::IA32_BIOS_SIGN_ID, u64::from(self.microcode_rev) << 32);
        self.msrs
            .implement(Msr::VOLTAGE_OFFSET_LIMIT, self.offset_limit.encode());
        self.msrs.implement(Msr::DRAM_POWER_LIMIT, 0);
        self.msrs.implement(Msr::DRAM_POWER_INFO, 0);
        self.msrs.implement(Msr::IA32_THERM_STATUS, 0);
        self.msrs.implement(Msr::PKG_ENERGY_STATUS, 0);
        self.msrs.implement(Msr::TIME_STAMP_COUNTER, 0);
    }

    /// The model specification.
    #[must_use]
    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// The execution engine (for workloads needing direct access).
    #[must_use]
    pub fn engine(&self) -> &ExecutionEngine {
        &self.engine
    }

    /// Number of cores.
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Whether the package is crashed and needs a reset.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Whether the overclocking mailbox accepts writes.
    #[must_use]
    pub fn ocm_enabled(&self) -> bool {
        self.ocm_enabled
    }

    /// Enables/disables the overclocking mailbox (Intel's access-control
    /// countermeasure). The state is attestation-visible.
    pub fn set_ocm_enabled(&mut self, enabled: bool) {
        self.ocm_enabled = enabled;
    }

    /// The loaded microcode revision.
    #[must_use]
    pub fn microcode_revision(&self) -> u32 {
        self.microcode_rev
    }

    /// Mailbox writes dropped by microcode/OCM-disable/clamp so far.
    #[must_use]
    pub fn mailbox_writes_ignored(&self) -> u64 {
        self.mailbox_writes_ignored
    }

    /// The package's telemetry sink. Fresh (and private to this
    /// package) until [`set_telemetry`](Self::set_telemetry) installs a
    /// shared one.
    #[must_use]
    pub fn telemetry(&self) -> &Sink {
        &self.telemetry
    }

    /// Installs a shared telemetry sink; the kernel does this so the
    /// package, the machine, and every module record into one registry.
    pub fn set_telemetry(&mut self, sink: Sink) {
        self.telemetry = sink;
        if let Some(table) = self.engine.slack_table() {
            // The table predates the sink (built at boot), so the event
            // lands at t=0. `build_ns` is wall-clock telemetry only.
            self.telemetry.emit(
                SimTime::ZERO,
                TelemetryEvent::SlackTableBuilt {
                    entries: table.len() as u64,
                    build_ns: table.build_ns(),
                },
            );
        }
    }

    /// Attaches (or detaches, with `None`) a precomputed slack table on
    /// the execution engine. Boot attaches the shared table
    /// automatically for base specs; tests detach it to pin the analytic
    /// path, the bench harness swaps it to time both.
    pub fn set_slack_table(&mut self, table: Option<Arc<crate::slack::SlackTable>>) {
        self.engine.set_slack_table(table);
    }

    /// Flushes the slack-table hit/fallback counters to the telemetry
    /// sink (`slack-table/hits`, `slack-table/fallbacks`). Idempotent:
    /// repeated calls add only the delta since the last flush.
    pub fn publish_slack_table_stats(&self) {
        let hits = self.engine.slack_table_hits();
        let fallbacks = self.engine.slack_table_fallbacks();
        let (flushed_hits, flushed_fallbacks) = self.slack_stats_flushed.get();
        if hits > flushed_hits {
            self.telemetry.add(
                MetricKey::global("slack-table", "hits"),
                hits - flushed_hits,
            );
        }
        if fallbacks > flushed_fallbacks {
            self.telemetry.add(
                MetricKey::global("slack-table", "fallbacks"),
                fallbacks - flushed_fallbacks,
            );
        }
        self.slack_stats_flushed.set((hits, fallbacks));
    }

    /// Accounts the modelled cost of one kernel-context MSR access on
    /// `core` (the kernel's `ModuleCtx` calls this; the time itself is
    /// charged as stolen time separately).
    pub fn note_kernel_msr_cost(&self, core: CoreId, cost_ps: u64) {
        if plugvolt_telemetry::hot_path_enabled() {
            if let Some(c) = self.hot.get(core.0) {
                c.access_cost_ps.set(c.access_cost_ps.get() + cost_ps);
                return;
            }
        }
        // Legacy per-access path (and out-of-range cores): owned-key
        // registry probe, kept as the bench harness's "before" arm.
        self.telemetry.add(
            MetricKey::per_core(
                String::from("msr"),
                String::from("access_cost_ps"),
                core.0 as u32,
            ),
            cost_ps,
        );
    }

    /// Accounts module-stolen time on `core` (kernel `charge` calls).
    pub fn note_stolen(&self, core: CoreId, cost_ps: u64) {
        if plugvolt_telemetry::hot_path_enabled() {
            if let Some(c) = self.hot.get(core.0) {
                c.stolen_ps.set(c.stolen_ps.get() + cost_ps);
                return;
            }
        }
        self.telemetry.add(
            MetricKey::per_core(
                String::from("kernel"),
                String::from("stolen_ps"),
                core.0 as u32,
            ),
            cost_ps,
        );
    }

    /// Flushes the batched per-core hot counters (`msr/rdmsr`,
    /// `msr/wrmsr`, `msr/access_cost_ps`, `kernel/stolen_ps`) to the
    /// telemetry sink. Idempotent: repeated calls add only the delta
    /// since the last flush, so totals match the legacy per-access
    /// instrumentation exactly.
    pub fn publish_hot_counters(&self) {
        for (i, c) in self.hot.iter().enumerate() {
            let cur = [
                c.rdmsr.get(),
                c.wrmsr.get(),
                c.access_cost_ps.get(),
                c.stolen_ps.get(),
            ];
            let prev = c.flushed.get();
            for (k, &(component, name)) in HOT_COUNTER_KEYS.iter().enumerate() {
                if cur[k] > prev[k] {
                    self.telemetry.add(
                        MetricKey::per_core(component, name, i as u32),
                        cur[k] - prev[k],
                    );
                }
            }
            c.flushed.set(cur);
        }
    }

    /// When `plane`'s offset last changed through an accepted mailbox
    /// write — the instant an attacker-chosen offset took effect, which
    /// the polling module's detection-latency metric measures from.
    #[must_use]
    pub fn last_offset_write_at(&self, plane: Plane) -> Option<SimTime> {
        self.plane_offset_written_at[plane.index() as usize]
    }

    /// When `core`'s frequency last changed through a P-state write.
    /// `None` for an invalid id or a core still at its boot frequency.
    #[must_use]
    pub fn last_pstate_change_at(&self, core: CoreId) -> Option<SimTime> {
        self.core_pstate_changed_at.get(core.0).copied().flatten()
    }

    /// Loads a microcode update from its distributable blob, performing
    /// the loader-side validation (container integrity + CPUID signature
    /// match) a BIOS/OS loader does before touching the sequencer.
    ///
    /// # Errors
    ///
    /// [`crate::ucode_blob::BlobError`] on a malformed container or a
    /// blob built for a different part.
    pub fn load_microcode_blob(
        &mut self,
        bytes: &[u8],
    ) -> Result<MicrocodeUpdate, crate::ucode_blob::BlobError> {
        let blob = crate::ucode_blob::UpdateBlob::decode(bytes)?;
        blob.validate_for(self.spec.model)?;
        self.load_microcode(blob.update);
        Ok(blob.update)
    }

    /// Loads a microcode update (BIOS/UEFI path). Persists across
    /// [`reset`](Self::reset), like a BIOS-embedded update.
    pub fn load_microcode(&mut self, update: MicrocodeUpdate) {
        self.msrs.remove_interceptor(update.interceptor_name());
        self.msrs
            .add_interceptor(Box::new(SequencerHook::new(update)));
        self.loaded_updates
            .retain(|u| u.interceptor_name() != update.interceptor_name());
        self.loaded_updates.push(update);
        self.microcode_rev = update.revision;
        self.msrs
            .store_internal(Msr::IA32_BIOS_SIGN_ID, u64::from(update.revision) << 32);
    }

    /// Provisions the hardware voltage-offset clamp
    /// (`MSR_VOLTAGE_OFFSET_LIMIT`, Sec. 5.2). Vendor-only operation.
    pub fn provision_offset_limit(&mut self, limit: VoltageOffsetLimit) {
        self.offset_limit = limit;
        self.msrs
            .store_internal(Msr::VOLTAGE_OFFSET_LIMIT, limit.encode());
    }

    /// Reboots a crashed (or running) package: MSRs and offsets to reset
    /// values, rail to nominal, cores to base frequency. Microcode
    /// updates and the hardware clamp persist (they live in BIOS/fuses).
    pub fn reset(&mut self, now: SimTime) {
        self.crashed = false;
        self.plane_offset_units = [0; 5];
        self.plane_offset_written_at = [None; 5];
        self.core_pstate_changed_at = vec![None; self.spec.cores];
        self.mailbox_read_plane = Plane::Core;
        for core in &mut self.cores {
            core.set_freq(self.spec.base_freq);
            core.wake();
        }
        let nominal = self.spec.nominal_voltage_mv(self.spec.base_freq);
        self.core_vr.set_target(now, nominal);
        self.cache_vr
            .set_target(now, self.spec.nominal_cache_voltage_mv(self.spec.base_freq));
        self.msrs = MsrFile::new();
        self.implement_msrs();
        for update in self.loaded_updates.clone() {
            self.msrs
                .add_interceptor(Box::new(SequencerHook::new(update)));
        }
    }

    /// The actual core-plane rail voltage at `now`, in mV.
    #[must_use]
    pub fn core_voltage_mv(&self, now: SimTime) -> f64 {
        self.core_vr.voltage_mv(now)
    }

    /// The actual cache-plane rail voltage at `now`, in mV.
    #[must_use]
    pub fn cache_voltage_mv(&self, now: SimTime) -> f64 {
        self.cache_vr.voltage_mv(now)
    }

    /// Both timing rails at `now`.
    #[must_use]
    pub fn rails(&self, now: SimTime) -> Rails {
        Rails {
            core_mv: self.core_voltage_mv(now),
            cache_mv: self.cache_voltage_mv(now),
        }
    }

    /// The currently requested offset of any plane, in mV.
    #[must_use]
    pub fn plane_offset_mv(&self, plane: Plane) -> i32 {
        plugvolt_msr::oc_mailbox::units_to_mv(self.plane_offset_units[plane.index() as usize])
    }

    /// The currently *requested* core-plane offset in mV (what reading
    /// MSR 0x150 reports), independent of whether the rail has settled.
    #[must_use]
    pub fn core_offset_mv(&self) -> i32 {
        plugvolt_msr::oc_mailbox::units_to_mv(self.plane_offset_units[Plane::Core.index() as usize])
    }

    /// When both rails have reached their current targets.
    #[must_use]
    pub fn rail_settles_at(&self) -> SimTime {
        self.core_vr.settles_at().max(self.cache_vr.settles_at())
    }

    /// The frequency of `core`.
    ///
    /// # Errors
    ///
    /// [`PackageError::NoSuchCore`] for an invalid id.
    pub fn core_freq(&self, core: CoreId) -> Result<FreqMhz, PackageError> {
        self.cores
            .get(core.0)
            .map(Core::freq)
            .ok_or(PackageError::NoSuchCore(core))
    }

    /// Sets `core`'s frequency (quantized to the frequency table) and
    /// retargets the shared rail to the new nominal voltage plus the
    /// current offset. This is what `IA32_PERF_CTL` writes do.
    ///
    /// # Errors
    ///
    /// [`PackageError::Crashed`] / [`PackageError::NoSuchCore`].
    pub fn set_core_freq(
        &mut self,
        now: SimTime,
        core: CoreId,
        freq: FreqMhz,
    ) -> Result<FreqMhz, PackageError> {
        self.ensure_alive()?;
        let quantized = self.spec.freq_table.quantize(freq);
        let c = self
            .cores
            .get_mut(core.0)
            .ok_or(PackageError::NoSuchCore(core))?;
        if c.freq() != quantized {
            // Only genuine transitions re-date the unsafe-state entry:
            // an idempotent P-state write must not shrink measured
            // detection latency.
            self.core_pstate_changed_at[core.0] = Some(now);
        }
        c.set_freq(quantized);
        self.telemetry.emit(
            now,
            TelemetryEvent::PState {
                core: core.0 as u32,
                freq_mhz: quantized.mhz(),
            },
        );
        self.retarget_rail(now, PSTATE_SETTLE);
        Ok(quantized)
    }

    fn ensure_alive(&self) -> Result<(), PackageError> {
        if self.crashed {
            Err(PackageError::Crashed)
        } else {
            Ok(())
        }
    }

    /// Highest frequency among running cores — what the shared rail must
    /// supply for. With every core idle the rail retreats to the table
    /// minimum (package C-state power saving).
    fn demand_freq(&self) -> FreqMhz {
        self.cores
            .iter()
            .filter(|c| c.is_running())
            .map(Core::freq)
            .max()
            .unwrap_or(self.spec.freq_table.min())
    }

    /// Whether `core` is executing (P-state) rather than idle (C-state).
    ///
    /// # Errors
    ///
    /// [`PackageError::NoSuchCore`] for an invalid id.
    pub fn is_core_running(&self, core: CoreId) -> Result<bool, PackageError> {
        self.cores
            .get(core.0)
            .map(Core::is_running)
            .ok_or(PackageError::NoSuchCore(core))
    }

    /// Parks `core` in idle C-state `level`; the shared rail retreats to
    /// the remaining demand.
    ///
    /// # Errors
    ///
    /// [`PackageError::Crashed`] / [`PackageError::NoSuchCore`].
    pub fn enter_idle(
        &mut self,
        now: SimTime,
        core: CoreId,
        level: u8,
    ) -> Result<(), PackageError> {
        self.ensure_alive()?;
        self.cores
            .get_mut(core.0)
            .ok_or(PackageError::NoSuchCore(core))?
            .enter_idle(level);
        self.retarget_rail(now, PSTATE_SETTLE);
        Ok(())
    }

    /// Wakes `core` back into the P-state spectrum at its resume
    /// frequency; the rail rises to meet the new demand first.
    ///
    /// # Errors
    ///
    /// [`PackageError::Crashed`] / [`PackageError::NoSuchCore`].
    pub fn wake_core(&mut self, now: SimTime, core: CoreId) -> Result<(), PackageError> {
        self.ensure_alive()?;
        self.cores
            .get_mut(core.0)
            .ok_or(PackageError::NoSuchCore(core))?
            .wake();
        self.retarget_rail(now, PSTATE_SETTLE);
        Ok(())
    }

    /// Instantaneous package power at `now`, watts.
    #[must_use]
    pub fn package_power_w(&self, now: SimTime) -> f64 {
        let v = self.core_voltage_mv(now);
        self.cores
            .iter()
            .map(|c| {
                self.energy_model
                    .core_power_w(v, c.freq().mhz(), c.is_running())
            })
            .sum()
    }

    /// Package energy consumed since boot (or the last reset of the
    /// meter), joules — what RAPL's `MSR_PKG_ENERGY_STATUS` counts.
    #[must_use]
    pub fn package_energy_j(&self, now: SimTime) -> f64 {
        let tail = now
            .saturating_duration_since(self.energy_checkpoint)
            .as_secs_f64();
        self.energy.joules() + self.package_power_w(now) * tail
    }

    /// Folds the elapsed segment into the energy meter. Called on every
    /// operating-point change so the constant-power segments between
    /// checkpoints stay short.
    fn checkpoint_energy(&mut self, now: SimTime) {
        let dt = now
            .saturating_duration_since(self.energy_checkpoint)
            .as_secs_f64();
        if dt > 0.0 {
            let p = self.package_power_w(now);
            self.energy.accumulate(p, dt);
        }
        self.energy_checkpoint = self.energy_checkpoint.max(now);
    }

    fn retarget_rail(&mut self, now: SimTime, settle: SimDuration) {
        // Slew churn is attributed, not costed: the VR retarget itself
        // happens off-core.
        self.telemetry.tracer().record_span("vr/retarget", 0);
        self.checkpoint_energy(now);
        let demand = self.demand_freq();
        let offset =
            f64::from(self.plane_offset_units[Plane::Core.index() as usize]) * 1000.0 / 1024.0;
        let core_target = self.spec.nominal_voltage_mv(demand) + offset;
        self.core_vr.set_target_after(now, core_target, settle);
        let cache_offset =
            f64::from(self.plane_offset_units[Plane::Cache.index() as usize]) * 1000.0 / 1024.0;
        let cache_target = self.spec.nominal_cache_voltage_mv(demand) + cache_offset;
        self.cache_vr.set_target_after(now, cache_target, settle);
        self.telemetry.emit(
            now,
            TelemetryEvent::VrSlew {
                plane: Plane::Core.index(),
                target_mv: core_target.round() as i32,
                settles_at: self.core_vr.settles_at(),
            },
        );
        self.telemetry.emit(
            now,
            TelemetryEvent::VrSlew {
                plane: Plane::Cache.index(),
                target_mv: cache_target.round() as i32,
                settles_at: self.cache_vr.settles_at(),
            },
        );
    }

    /// `rdmsr` from `core`.
    ///
    /// # Errors
    ///
    /// [`PackageError`] on crash, bad core, or `#GP`.
    pub fn rdmsr(&self, now: SimTime, core: CoreId, msr: Msr) -> Result<u64, PackageError> {
        self.ensure_alive()?;
        if core.0 >= self.cores.len() {
            return Err(PackageError::NoSuchCore(core));
        }
        if plugvolt_telemetry::hot_path_enabled() {
            let c = &self.hot[core.0];
            c.rdmsr.set(c.rdmsr.get() + 1);
        } else {
            self.telemetry.incr(MetricKey::per_core(
                String::from("msr"),
                String::from("rdmsr"),
                core.0 as u32,
            ));
        }
        if self.telemetry.msr_events_enabled() {
            self.telemetry.emit(
                now,
                TelemetryEvent::MsrRead {
                    core: core.0 as u32,
                    msr: msr.addr(),
                },
            );
        }
        match msr {
            Msr::IA32_PERF_STATUS => {
                let freq = self.cores[core.0].freq();
                let v = self.core_voltage_mv(now).max(0.0);
                Ok(PerfStatus::new(freq.mhz(), v).encode())
            }
            Msr::TIME_STAMP_COUNTER => {
                // The invariant TSC ticks at the base frequency
                // regardless of the current P-state.
                let base = u64::from(self.spec.base_freq.mhz());
                Ok(now.as_picos().saturating_mul(base) / 1_000_000)
            }
            Msr::PKG_ENERGY_STATUS => {
                // RAPL: wrapping 32-bit counter in 2^-16 J units.
                let mut meter = self.energy;
                let tail = now
                    .saturating_duration_since(self.energy_checkpoint)
                    .as_secs_f64();
                meter.accumulate(self.package_power_w(now), tail);
                Ok(u64::from(meter.rapl_counter()))
            }
            Msr::OC_MAILBOX => {
                // Reading the mailbox reports the offset of the plane the
                // last command addressed (the response register of the
                // real protocol); at boot that is the core plane, which
                // is what the paper's Algorithm 3 reads.
                let plane = self.mailbox_read_plane;
                let units = self.plane_offset_units[plane.index() as usize];
                Ok(OcRequest::write_offset(0, plane)
                    .with_offset_units(units)
                    .encode())
            }
            _ => Ok(self.msrs.rdmsr(msr)?),
        }
    }

    /// `wrmsr` from `core`, with full side effects (mailbox → VR,
    /// `PERF_CTL` → frequency) and the microcode intercept chain.
    ///
    /// # Errors
    ///
    /// [`PackageError`] on crash, bad core, or `#GP`.
    pub fn wrmsr(
        &mut self,
        now: SimTime,
        core: CoreId,
        msr: Msr,
        value: u64,
    ) -> Result<WriteOutcome, PackageError> {
        self.ensure_alive()?;
        if core.0 >= self.cores.len() {
            return Err(PackageError::NoSuchCore(core));
        }
        if plugvolt_telemetry::hot_path_enabled() {
            let c = &self.hot[core.0];
            c.wrmsr.set(c.wrmsr.get() + 1);
        } else {
            self.telemetry.incr(MetricKey::per_core(
                String::from("msr"),
                String::from("wrmsr"),
                core.0 as u32,
            ));
        }
        if self.telemetry.msr_events_enabled() {
            self.telemetry.emit(
                now,
                TelemetryEvent::MsrWrite {
                    core: core.0 as u32,
                    msr: msr.addr(),
                    value,
                },
            );
        }
        // OCM disable gates the mailbox before anything else sees it.
        if msr == Msr::OC_MAILBOX && !self.ocm_enabled {
            self.mailbox_writes_ignored += 1;
            self.note_mailbox_ignored(now, core, value);
            return Ok(WriteOutcome::Ignored);
        }
        let outcome = self.msrs.wrmsr(msr, value)?;
        let WriteOutcome::Written { stored } = outcome else {
            if msr == Msr::OC_MAILBOX {
                self.mailbox_writes_ignored += 1;
                self.note_mailbox_ignored(now, core, value);
            }
            return Ok(outcome);
        };
        match msr {
            Msr::OC_MAILBOX => {
                if let Ok(req) = OcRequest::decode(stored) {
                    self.mailbox_read_plane = req.plane();
                    if req.is_write() {
                        // The hardware clamp (if provisioned) bounds the
                        // accepted offset.
                        let requested_mv = req.offset_mv();
                        let req = self.offset_limit.clamp(req);
                        self.plane_offset_units[req.plane().index() as usize] = req.offset_units();
                        self.plane_offset_written_at[req.plane().index() as usize] = Some(now);
                        self.telemetry.emit(
                            now,
                            TelemetryEvent::OcMailbox {
                                core: core.0 as u32,
                                plane: req.plane().index(),
                                requested_mv,
                                applied_mv: req.offset_mv(),
                                accepted: true,
                            },
                        );
                        if matches!(req.plane(), Plane::Core | Plane::Cache) {
                            self.retarget_rail(now, MAILBOX_SETTLE);
                        }
                    }
                }
                // Malformed values (run bit clear) are stored but inert,
                // like the real mailbox.
            }
            Msr::IA32_PERF_CTL => {
                let freq = FreqMhz(decode_perf_ctl(stored));
                self.set_core_freq(now, core, freq)?;
            }
            _ => {}
        }
        Ok(outcome)
    }

    /// Records a swallowed mailbox write: the requested offset never
    /// reached the regulator, so the applied offset is the plane's
    /// current (unchanged) one. This is the event the exposure-window
    /// metric relies on being *absent* for microcode/clamp levels.
    fn note_mailbox_ignored(&self, now: SimTime, core: CoreId, raw: u64) {
        self.telemetry
            .incr(MetricKey::global("msr", "wrmsr_ignored"));
        if let Ok(req) = OcRequest::decode(raw) {
            if req.is_write() {
                self.telemetry.emit(
                    now,
                    TelemetryEvent::OcMailbox {
                        core: core.0 as u32,
                        plane: req.plane().index(),
                        requested_mv: req.offset_mv(),
                        applied_mv: self.plane_offset_mv(req.plane()),
                        accepted: false,
                    },
                );
            }
        }
    }

    /// Latches the crashed state, emitting the telemetry event once.
    fn latch_crash(&mut self, now: SimTime, core: CoreId) {
        if !self.crashed {
            self.telemetry.incr(MetricKey::global("cpu", "crashes"));
            self.telemetry.emit(
                now,
                TelemetryEvent::Crash {
                    core: core.0 as u32,
                },
            );
        }
        self.crashed = true;
    }

    /// Accounts a batch that retired with faulty results.
    fn note_faults(&self, now: SimTime, core: CoreId, faults: u64) {
        if faults > 0 {
            self.telemetry
                .add(MetricKey::per_core("cpu", "faults", core.0 as u32), faults);
            self.telemetry.emit(
                now,
                TelemetryEvent::Fault {
                    core: core.0 as u32,
                    faults,
                },
            );
        }
    }

    /// Executing on an idle core wakes it (scheduling reality).
    fn wake_if_idle(&mut self, now: SimTime, core: CoreId) -> Result<(), PackageError> {
        if !self.is_core_running(core)? {
            self.wake_core(now, core)?;
        }
        Ok(())
    }

    /// Checks the rail for collapse at `now`, latching a crash if it has
    /// fallen below the absolute minimum operating voltage.
    fn check_rail(&mut self, now: SimTime, core: CoreId) -> Result<Rails, PackageError> {
        self.ensure_alive()?;
        let rails = self.rails(now);
        if rails.core_mv < self.spec.absolute_min_voltage_mv()
            || rails.cache_mv < self.spec.absolute_min_voltage_mv()
        {
            self.latch_crash(now, core);
            return Err(PackageError::Crashed);
        }
        Ok(rails)
    }

    /// Executes one `imul` on `core` at the rail conditions of `now`.
    ///
    /// # Errors
    ///
    /// [`PackageError::Crashed`] if the package is (or just) crashed.
    pub fn execute_imul(
        &mut self,
        now: SimTime,
        core: CoreId,
        a: u64,
        b: u64,
    ) -> Result<MulExecution, PackageError> {
        self.wake_if_idle(now, core)?;
        let rails = self.check_rail(now, core)?;
        let f = self.core_freq(core)?;
        let ex = self
            .engine
            .execute_imul(a, b, f, rails.core_mv, &mut self.rng);
        if ex.outcome == plugvolt_circuit::fault::FaultOutcome::Crash {
            self.latch_crash(now, core);
            return Err(PackageError::Crashed);
        }
        if matches!(
            ex.outcome,
            plugvolt_circuit::fault::FaultOutcome::Faulted { .. }
        ) {
            self.note_faults(now, core, 1);
        }
        Ok(ex)
    }

    /// Runs the EXECUTE-thread loop (`iters` varying-operand `imul`s) on
    /// `core` at the rail conditions of `now`. A crash latches.
    ///
    /// # Errors
    ///
    /// [`PackageError::Crashed`] / [`PackageError::NoSuchCore`].
    pub fn run_imul_loop(
        &mut self,
        now: SimTime,
        core: CoreId,
        iters: u64,
    ) -> Result<u64, PackageError> {
        self.wake_if_idle(now, core)?;
        let rails = self.check_rail(now, core)?;
        let f = self.core_freq(core)?;
        match self
            .engine
            .run_imul_loop(iters, f, rails.core_mv, &mut self.rng)
        {
            BatchOutcome::Retired { faults } => {
                self.note_faults(now, core, faults);
                Ok(faults)
            }
            BatchOutcome::Crashed => {
                self.latch_crash(now, core);
                Err(PackageError::Crashed)
            }
        }
    }

    /// Runs a batch of `class` instructions on `core`. A crash latches.
    ///
    /// # Errors
    ///
    /// [`PackageError::Crashed`] / [`PackageError::NoSuchCore`].
    pub fn run_batch(
        &mut self,
        now: SimTime,
        core: CoreId,
        class: InstrClass,
        iters: u64,
    ) -> Result<u64, PackageError> {
        self.wake_if_idle(now, core)?;
        let rails = self.check_rail(now, core)?;
        let f = self.core_freq(core)?;
        match self
            .engine
            .run_batch_on_rails(class, iters, f, rails, &mut self.rng)
        {
            BatchOutcome::Retired { faults } => {
                self.note_faults(now, core, faults);
                Ok(faults)
            }
            BatchOutcome::Crashed => {
                self.latch_crash(now, core);
                Err(PackageError::Crashed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn now() -> SimTime {
        SimTime::ZERO
    }

    fn settled(pkg: &CpuPackage) -> SimTime {
        pkg.rail_settles_at() + SimDuration::from_micros(1)
    }

    fn pkg() -> CpuPackage {
        CpuPackage::new(CpuModel::SkyLake, 11)
    }

    #[test]
    fn powers_on_at_base_frequency_and_nominal_voltage() {
        let p = pkg();
        assert_eq!(p.core_freq(CoreId(0)).unwrap(), FreqMhz(3_200));
        let v = p.core_voltage_mv(now());
        let expected = p.spec().nominal_voltage_mv(FreqMhz(3_200));
        assert!((v - expected).abs() < 1e-9);
        assert!(!p.is_crashed());
    }

    #[test]
    fn perf_status_reports_freq_and_voltage() {
        let p = pkg();
        let raw = p.rdmsr(now(), CoreId(1), Msr::IA32_PERF_STATUS).unwrap();
        let st = PerfStatus::decode(raw);
        assert_eq!(st.freq_mhz(), 3_200);
        assert!((st.voltage_mv() - p.core_voltage_mv(now())).abs() < 0.2);
    }

    #[test]
    fn perf_ctl_changes_frequency_quantized() {
        let mut p = pkg();
        let raw = plugvolt_msr::perf_status::encode_perf_ctl(2_600);
        p.wrmsr(now(), CoreId(0), Msr::IA32_PERF_CTL, raw).unwrap();
        assert_eq!(p.core_freq(CoreId(0)).unwrap(), FreqMhz(2_600));
        // Other cores unaffected.
        assert_eq!(p.core_freq(CoreId(1)).unwrap(), FreqMhz(3_200));
    }

    #[test]
    fn mailbox_write_moves_rail_after_settling() {
        let mut p = pkg();
        let req = OcRequest::write_offset(-100, Plane::Core).encode();
        p.wrmsr(now(), CoreId(0), Msr::OC_MAILBOX, req).unwrap();
        // Offset is visible immediately in the register...
        assert!((-100..=-99).contains(&p.core_offset_mv()));
        // ...but the rail only moves after settle + slew.
        let before = p.core_voltage_mv(now());
        let nominal = p.spec().nominal_voltage_mv(FreqMhz(3_200));
        assert!((before - nominal).abs() < 1e-9);
        let after = p.core_voltage_mv(settled(&p));
        // −100 mV truncates to −102 units = −99.609375 mV applied.
        assert!((after - (nominal - 99.609375)).abs() < 0.1, "after={after}");
    }

    #[test]
    fn mailbox_read_reports_current_offset() {
        let mut p = pkg();
        let req = OcRequest::write_offset(-125, Plane::Core).encode();
        p.wrmsr(now(), CoreId(0), Msr::OC_MAILBOX, req).unwrap();
        let raw = p.rdmsr(now(), CoreId(0), Msr::OC_MAILBOX).unwrap();
        let back = OcRequest::decode(raw).unwrap();
        assert_eq!(back.offset_mv(), -125);
    }

    #[test]
    fn ocm_disable_ignores_writes() {
        let mut p = pkg();
        p.set_ocm_enabled(false);
        let req = OcRequest::write_offset(-200, Plane::Core).encode();
        let out = p.wrmsr(now(), CoreId(0), Msr::OC_MAILBOX, req).unwrap();
        assert_eq!(out, WriteOutcome::Ignored);
        assert_eq!(p.core_offset_mv(), 0);
        assert_eq!(p.mailbox_writes_ignored(), 1);
    }

    #[test]
    fn microcode_patch_write_ignores_unsafe_offsets() {
        let mut p = pkg();
        p.load_microcode(MicrocodeUpdate::maximal_safe_state(0xf5, -125));
        assert_eq!(p.microcode_revision(), 0xf5);
        let deep = OcRequest::write_offset(-250, Plane::Core).encode();
        let out = p.wrmsr(now(), CoreId(0), Msr::OC_MAILBOX, deep).unwrap();
        assert_eq!(out, WriteOutcome::Ignored);
        assert_eq!(p.core_offset_mv(), 0);
        let safe = OcRequest::write_offset(-100, Plane::Core).encode();
        assert!(p
            .wrmsr(now(), CoreId(0), Msr::OC_MAILBOX, safe)
            .unwrap()
            .was_written());
        assert!((-100..=-99).contains(&p.core_offset_mv()));
    }

    #[test]
    fn hardware_clamp_bounds_accepted_offset() {
        let mut p = pkg();
        p.provision_offset_limit(VoltageOffsetLimit::new(-125));
        let deep = OcRequest::write_offset(-300, Plane::Core).encode();
        p.wrmsr(now(), CoreId(0), Msr::OC_MAILBOX, deep).unwrap();
        assert_eq!(p.core_offset_mv(), -125);
    }

    #[test]
    fn nominal_execution_is_fault_free() {
        let mut p = pkg();
        let faults = p.run_imul_loop(now(), CoreId(0), 1_000_000).unwrap();
        assert_eq!(faults, 0);
    }

    #[test]
    fn deep_undervolt_faults_then_crash_latches() {
        let mut p = pkg();
        // Drive the offset deep enough to fault at base frequency.
        let mut offset = -120;
        let faults = loop {
            let req = OcRequest::write_offset(offset, Plane::Core).encode();
            p.wrmsr(now(), CoreId(0), Msr::OC_MAILBOX, req).unwrap();
            let t = settled(&p);
            match p.run_imul_loop(t, CoreId(0), 1_000_000) {
                Ok(0) => {
                    offset -= 5;
                    assert!(offset > -400, "never faulted");
                }
                Ok(n) => break n,
                Err(PackageError::Crashed) => {
                    panic!("crashed before any fault band at {offset} mV")
                }
                Err(e) => panic!("{e}"),
            }
        };
        assert!(faults > 0);
        // Push far deeper: must crash, and stay crashed until reset.
        let req = OcRequest::write_offset(-450, Plane::Core).encode();
        let _ = p.wrmsr(now(), CoreId(0), Msr::OC_MAILBOX, req);
        let t = settled(&p);
        assert_eq!(
            p.run_imul_loop(t, CoreId(0), 1_000_000),
            Err(PackageError::Crashed)
        );
        assert!(p.is_crashed());
        assert_eq!(
            p.rdmsr(t, CoreId(0), Msr::IA32_PERF_STATUS),
            Err(PackageError::Crashed)
        );
        p.reset(t);
        assert!(!p.is_crashed());
        assert_eq!(p.core_offset_mv(), 0);
        let v = p.core_voltage_mv(p.rail_settles_at() + SimDuration::from_micros(1));
        let nominal = p.spec().nominal_voltage_mv(p.spec().base_freq);
        assert!((v - nominal).abs() < 1.0);
    }

    #[test]
    fn microcode_blob_load_validates_and_applies() {
        use crate::ucode_blob::{cpuid_signature, BlobError, UpdateBlob};
        let mut p = pkg(); // Sky Lake
        let good = UpdateBlob::package(
            MicrocodeUpdate::maximal_safe_state(0xf7, -150),
            CpuModel::SkyLake,
            0x0607_2026,
        );
        p.load_microcode_blob(&good.encode()).unwrap();
        assert_eq!(p.microcode_revision(), 0xf7);
        let deep = OcRequest::write_offset(-250, Plane::Core).encode();
        assert_eq!(
            p.wrmsr(now(), CoreId(0), Msr::OC_MAILBOX, deep).unwrap(),
            WriteOutcome::Ignored
        );
        // Wrong part: rejected before any state change.
        let foreign = UpdateBlob::package(
            MicrocodeUpdate::maximal_safe_state(0xf8, -10),
            CpuModel::CometLake,
            0x0607_2026,
        );
        assert_eq!(
            p.load_microcode_blob(&foreign.encode()),
            Err(BlobError::WrongProcessor {
                blob: cpuid_signature(CpuModel::CometLake),
                part: cpuid_signature(CpuModel::SkyLake),
            })
        );
        assert_eq!(p.microcode_revision(), 0xf7, "revision unchanged");
        // Corrupted container: rejected.
        let mut bytes = good.encode();
        bytes[30] ^= 0xFF;
        assert!(p.load_microcode_blob(&bytes).is_err());
    }

    #[test]
    fn microcode_survives_reset() {
        let mut p = pkg();
        p.load_microcode(MicrocodeUpdate::maximal_safe_state(0xf5, -125));
        p.reset(now());
        let deep = OcRequest::write_offset(-250, Plane::Core).encode();
        let out = p.wrmsr(now(), CoreId(0), Msr::OC_MAILBOX, deep).unwrap();
        assert_eq!(out, WriteOutcome::Ignored);
    }

    #[test]
    fn bad_core_id_is_rejected() {
        let mut p = pkg();
        assert_eq!(
            p.rdmsr(now(), CoreId(9), Msr::IA32_PERF_STATUS),
            Err(PackageError::NoSuchCore(CoreId(9)))
        );
        assert_eq!(
            p.wrmsr(now(), CoreId(9), Msr::OC_MAILBOX, 0),
            Err(PackageError::NoSuchCore(CoreId(9)))
        );
    }

    #[test]
    fn unknown_msr_faults() {
        let p = pkg();
        assert!(matches!(
            p.rdmsr(now(), CoreId(0), Msr(0x1234)),
            Err(PackageError::Msr(MsrError::GeneralProtection { .. }))
        ));
    }

    #[test]
    fn energy_accumulates_with_time_and_drops_with_undervolt() {
        let mut p = pkg();
        // Window A: 100 ms at nominal.
        p.checkpoint_energy(now());
        let t1 = SimTime::ZERO + SimDuration::from_millis(100);
        let e_nominal = p.package_energy_j(t1);
        assert!(e_nominal > 0.5, "e={e_nominal}");
        // Window B: same wall time with a −100 mV benign undervolt.
        let req = OcRequest::write_offset(-100, Plane::Core).encode();
        p.wrmsr(t1, CoreId(0), Msr::OC_MAILBOX, req).unwrap();
        let t2 = p.rail_settles_at();
        let e_start = p.package_energy_j(t2);
        let t3 = t2 + SimDuration::from_millis(100);
        let e_under = p.package_energy_j(t3) - e_start;
        assert!(
            e_under < e_nominal * 0.95,
            "undervolt saved nothing: {e_under} vs {e_nominal}"
        );
    }

    #[test]
    fn idle_package_sips_energy() {
        let mut p = pkg();
        let t0 = now();
        for c in 0..4 {
            p.enter_idle(t0, CoreId(c), 6).unwrap();
        }
        let t1 = p.rail_settles_at();
        let e_start = p.package_energy_j(t1);
        let t2 = t1 + SimDuration::from_millis(100);
        let e_idle = p.package_energy_j(t2) - e_start;
        // Versus a fully busy window of the same length.
        let mut busy = pkg();
        busy.checkpoint_energy(t0);
        let e_busy = busy.package_energy_j(t0 + SimDuration::from_millis(100));
        assert!(e_idle < e_busy / 10.0, "idle {e_idle} vs busy {e_busy}");
    }

    #[test]
    fn tsc_is_invariant_across_pstates() {
        let mut p = pkg(); // base 3.2 GHz
        let t = SimTime::ZERO + SimDuration::from_micros(10);
        let tsc1 = p.rdmsr(t, CoreId(0), Msr::TIME_STAMP_COUNTER).unwrap();
        assert_eq!(tsc1, 32_000, "10 µs at 3.2 GHz");
        // Dropping the core frequency does not change the TSC rate.
        p.set_core_freq(t, CoreId(0), FreqMhz(800)).unwrap();
        let t2 = t + SimDuration::from_micros(10);
        let tsc2 = p.rdmsr(t2, CoreId(0), Msr::TIME_STAMP_COUNTER).unwrap();
        assert_eq!(tsc2 - tsc1, 32_000);
    }

    #[test]
    fn rapl_msr_reports_the_meter() {
        let mut p = pkg();
        let t = SimTime::ZERO + SimDuration::from_millis(50);
        let raw = p.rdmsr(t, CoreId(0), Msr::PKG_ENERGY_STATUS).unwrap();
        let joules = raw as f64 * crate::energy::RAPL_UNIT_J;
        let direct = p.package_energy_j(t);
        assert!((joules - direct).abs() < 0.001, "{joules} vs {direct}");
        assert!(joules > 0.1);
        let _ = &mut p;
    }

    #[test]
    fn idle_cores_release_the_rail() {
        let mut p = pkg();
        let nominal_base = p.spec().nominal_voltage_mv(FreqMhz(3_200));
        let nominal_min = p.spec().nominal_voltage_mv(FreqMhz(800));
        for c in 0..4 {
            p.enter_idle(now(), CoreId(c), 6).unwrap();
        }
        let t = settled(&p);
        let v = p.core_voltage_mv(t);
        assert!(
            (v - nominal_min).abs() < 1.0,
            "rail at {v}, want {nominal_min}"
        );
        assert!(v < nominal_base - 100.0);
        // Waking one core pulls the rail back up.
        p.wake_core(t, CoreId(2)).unwrap();
        let t2 = settled(&p);
        assert!((p.core_voltage_mv(t2) - nominal_base).abs() < 1.0);
        assert!(p.is_core_running(CoreId(2)).unwrap());
        assert!(!p.is_core_running(CoreId(0)).unwrap());
    }

    #[test]
    fn executing_on_an_idle_core_wakes_it() {
        let mut p = pkg();
        p.enter_idle(now(), CoreId(1), 1).unwrap();
        assert!(!p.is_core_running(CoreId(1)).unwrap());
        let t = settled(&p);
        let faults = p.run_imul_loop(t, CoreId(1), 10_000).unwrap();
        assert_eq!(faults, 0);
        assert!(p.is_core_running(CoreId(1)).unwrap());
    }

    #[test]
    fn cache_plane_write_moves_cache_rail_only() {
        let mut p = pkg();
        let nominal_core = p.spec().nominal_voltage_mv(FreqMhz(3_200));
        let nominal_cache = p.spec().nominal_cache_voltage_mv(FreqMhz(3_200));
        let req = OcRequest::write_offset(-125, Plane::Cache).encode();
        p.wrmsr(now(), CoreId(0), Msr::OC_MAILBOX, req).unwrap();
        let t = settled(&p);
        assert!(
            (p.core_voltage_mv(t) - nominal_core).abs() < 1e-9,
            "core rail untouched"
        );
        assert!(
            (p.cache_voltage_mv(t) - (nominal_cache - 125.0)).abs() < 1.0,
            "cache rail moved: {}",
            p.cache_voltage_mv(t)
        );
        assert_eq!(p.plane_offset_mv(Plane::Cache), -125);
        assert_eq!(p.plane_offset_mv(Plane::Core), 0);
    }

    #[test]
    fn mailbox_read_protocol_selects_plane() {
        let mut p = pkg();
        let wr = OcRequest::write_offset(-125, Plane::Cache).encode();
        p.wrmsr(now(), CoreId(0), Msr::OC_MAILBOX, wr).unwrap();
        // The response register now reflects the cache plane.
        let resp = OcRequest::decode(p.rdmsr(now(), CoreId(0), Msr::OC_MAILBOX).unwrap()).unwrap();
        assert_eq!(resp.plane(), Plane::Cache);
        assert_eq!(resp.offset_mv(), -125);
        // A read command re-targets the response at another plane.
        let rd = OcRequest::read(Plane::Core).encode();
        p.wrmsr(now(), CoreId(0), Msr::OC_MAILBOX, rd).unwrap();
        let resp = OcRequest::decode(p.rdmsr(now(), CoreId(0), Msr::OC_MAILBOX).unwrap()).unwrap();
        assert_eq!(resp.plane(), Plane::Core);
        assert_eq!(resp.offset_mv(), 0);
    }

    #[test]
    fn cache_undervolt_faults_loads_not_alu() {
        use crate::exec::InstrClass;
        let mut p = pkg();
        // Deep cache-plane undervolt at a fast core clock.
        p.set_core_freq(now(), CoreId(0), FreqMhz(3_600)).unwrap();
        let req = OcRequest::write_offset(-300, Plane::Cache).encode();
        p.wrmsr(now(), CoreId(0), Msr::OC_MAILBOX, req).unwrap();
        let t = settled(&p);
        let alu = p
            .run_batch(t, CoreId(0), InstrClass::AluAdd, 1_000_000)
            .unwrap();
        assert_eq!(alu, 0, "core plane is at nominal; ALU must be clean");
        match p.run_batch(t, CoreId(0), InstrClass::Load, 1_000_000) {
            Ok(faults) => assert!(faults > 0, "loads must fault under cache undervolt"),
            Err(PackageError::Crashed) => {} // even deeper: also a violation
            Err(e) => panic!("{e}"),
        }
    }

    #[test]
    fn rail_tracks_highest_running_core() {
        let mut p = pkg();
        // Drop core 0 to the floor; rail must still serve cores 1–3 at base.
        p.set_core_freq(now(), CoreId(0), FreqMhz(800)).unwrap();
        let nominal_base = p.spec().nominal_voltage_mv(FreqMhz(3_200));
        assert!((p.core_vr.target_mv() - nominal_base).abs() < 1e-9);
        // Drop all cores: rail follows.
        for c in 0..4 {
            p.set_core_freq(now(), CoreId(c), FreqMhz(800)).unwrap();
        }
        let nominal_low = p.spec().nominal_voltage_mv(FreqMhz(800));
        assert!((p.core_vr.target_mv() - nominal_low).abs() < 1e-9);
    }
}
