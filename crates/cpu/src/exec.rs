//! The execution engine: instruction classes and their datapath timing.
//!
//! Different x86 instructions stress different path depths; prior work
//! found `imul` the most faultable (deepest repeatedly-exercised path),
//! which is why the paper's EXECUTE thread uses it. Workloads are
//! described as mixes over these classes; each class scales the
//! multiplier-calibrated path by a depth factor and carries a CPI for
//! time accounting.

use crate::freq::FreqMhz;
use crate::slack::{class_index, SlackTable};
use plugvolt_circuit::delay::{Millivolts, Picoseconds};
use plugvolt_circuit::fault::{sample_binomial, FaultModel};
use plugvolt_circuit::multiplier::MultiplierUnit;
use plugvolt_circuit::timing::{TimingBudget, TimingState};
use plugvolt_des::rng::SimRng;
use plugvolt_des::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::Arc;

/// Instruction classes the engine models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrClass {
    /// 64×64 integer multiply — the deepest path, the attack target.
    Imul,
    /// AES round (AES-NI): S-box + MixColumns tree, slightly shallower.
    Aesenc,
    /// Floating-point fused multiply-add.
    Fma,
    /// Simple ALU op (add/sub/logic) — shallow.
    AluAdd,
    /// L1-hit load: address generation + way select.
    Load,
}

impl InstrClass {
    /// All modelled classes.
    pub const ALL: [InstrClass; 5] = [
        InstrClass::Imul,
        InstrClass::Aesenc,
        InstrClass::Fma,
        InstrClass::AluAdd,
        InstrClass::Load,
    ];

    /// Depth of this class's critical path relative to the full-width
    /// multiplier path.
    #[must_use]
    pub fn depth_factor(self) -> f64 {
        match self {
            InstrClass::Imul => 1.0,
            InstrClass::Fma => 0.93,
            InstrClass::Aesenc => 0.82,
            InstrClass::Load => 0.62,
            InstrClass::AluAdd => 0.48,
        }
    }

    /// Average cycles per instruction in a tight loop (throughput CPI).
    #[must_use]
    pub fn cpi(self) -> f64 {
        match self {
            InstrClass::Imul => 1.0,
            InstrClass::Fma => 0.5,
            InstrClass::Aesenc => 1.0,
            InstrClass::Load => 0.5,
            InstrClass::AluAdd => 0.25,
        }
    }
}

/// The supply voltages visible to an instruction: the core-plane rail
/// and the cache-plane rail (Table 1 of the paper documents five planes;
/// these two carry timing-critical logic in this model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rails {
    /// Core-plane voltage, mV.
    pub core_mv: Millivolts,
    /// Cache-plane voltage, mV.
    pub cache_mv: Millivolts,
}

impl Rails {
    /// Both planes at the same voltage (the pre-multi-plane behaviour).
    #[must_use]
    pub fn uniform(v_mv: Millivolts) -> Self {
        Rails {
            core_mv: v_mv,
            cache_mv: v_mv,
        }
    }

    /// The supply that times this instruction class: loads traverse the
    /// cache arrays (cache plane), everything else the core plane.
    #[must_use]
    pub fn for_class(&self, class: InstrClass) -> Millivolts {
        match class {
            InstrClass::Load => self.cache_mv,
            _ => self.core_mv,
        }
    }
}

/// Result of executing a batch of one instruction class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchOutcome {
    /// The batch retired; `faults` instructions produced wrong results.
    Retired {
        /// Count of architecturally incorrect results.
        faults: u64,
    },
    /// The core locked up during the batch.
    Crashed,
}

impl BatchOutcome {
    /// Faults observed, if the batch retired.
    #[must_use]
    pub fn faults(self) -> Option<u64> {
        match self {
            BatchOutcome::Retired { faults } => Some(faults),
            BatchOutcome::Crashed => None,
        }
    }
}

/// The execution engine for one package (shared across cores; the core's
/// frequency and the rail voltage are passed per call).
#[derive(Debug, Clone)]
pub struct ExecutionEngine {
    mul: MultiplierUnit,
    fault_model: FaultModel,
    t_setup_ps: f64,
    t_eps_ps: f64,
    /// Precomputed slack table for the batch hot path ([`crate::slack`]);
    /// `None` runs everything analytically.
    table: Option<Arc<SlackTable>>,
    /// Batches answered from the table.
    table_hits: Cell<u64>,
    /// Batches that missed the table (or ran with none attached).
    table_fallbacks: Cell<u64>,
}

impl ExecutionEngine {
    /// Creates an engine over a calibrated multiplier and fault model.
    #[must_use]
    pub fn new(
        mul: MultiplierUnit,
        fault_model: FaultModel,
        t_setup_ps: f64,
        t_eps_ps: f64,
    ) -> Self {
        ExecutionEngine {
            mul,
            fault_model,
            t_setup_ps,
            t_eps_ps,
            table: None,
            table_hits: Cell::new(0),
            table_fallbacks: Cell::new(0),
        }
    }

    /// Attaches (or detaches, with `None`) a precomputed slack table.
    ///
    /// The table is a pure cache: attached or not, every batch outcome
    /// and RNG draw is bit-identical (see [`crate::slack`]).
    pub fn set_slack_table(&mut self, table: Option<Arc<SlackTable>>) {
        self.table = table;
    }

    /// The attached slack table, if any.
    #[must_use]
    pub fn slack_table(&self) -> Option<&Arc<SlackTable>> {
        self.table.as_ref()
    }

    /// How many batches were answered from the slack table so far.
    #[must_use]
    pub fn slack_table_hits(&self) -> u64 {
        self.table_hits.get()
    }

    /// How many batches fell back to the analytic path (off-grid query
    /// or no table attached).
    #[must_use]
    pub fn slack_table_fallbacks(&self) -> u64 {
        self.table_fallbacks.get()
    }

    /// The timing budget at frequency `f`.
    #[must_use]
    pub fn budget(&self, f: FreqMhz) -> TimingBudget {
        TimingBudget::for_frequency_mhz(f.mhz(), self.t_setup_ps, self.t_eps_ps)
    }

    /// The calibrated multiplier unit.
    #[must_use]
    pub fn multiplier(&self) -> &MultiplierUnit {
        &self.mul
    }

    /// The fault model.
    #[must_use]
    pub fn fault_model(&self) -> &FaultModel {
        &self.fault_model
    }

    /// Critical-path delay of one instruction of `class` at voltage `v`.
    #[must_use]
    pub fn class_path_delay_ps(&self, class: InstrClass, v_mv: Millivolts) -> Picoseconds {
        // The class factor scales the logic depth, not the fixed wire part.
        let full = self.mul.worst_path_delay_ps(v_mv);
        let shallow = self.mul.path_delay_ps(1, 1, v_mv);
        shallow + (full - shallow) * class.depth_factor()
    }

    /// Timing slack for `class` at frequency `f` and voltage `v`.
    #[must_use]
    pub fn class_slack_ps(&self, class: InstrClass, f: FreqMhz, v_mv: Millivolts) -> Picoseconds {
        self.budget(f)
            .slack_ps(self.class_path_delay_ps(class, v_mv))
    }

    /// Executes one `imul` with explicit operands, exactly (used by the
    /// crypto victims, where *which* bits flip matters).
    #[must_use]
    pub fn execute_imul(
        &self,
        a: u64,
        b: u64,
        f: FreqMhz,
        v_mv: Millivolts,
        rng: &mut SimRng,
    ) -> plugvolt_circuit::multiplier::MulExecution {
        self.mul
            .execute(a, b, &self.budget(f), v_mv, &self.fault_model, rng)
    }

    /// Runs the paper's EXECUTE-thread loop: `iters` `imul`s with varying
    /// operands, returning the fault count (or a crash).
    #[must_use]
    pub fn run_imul_loop(
        &self,
        iters: u64,
        f: FreqMhz,
        v_mv: Millivolts,
        rng: &mut SimRng,
    ) -> BatchOutcome {
        // Table fast path: same operand-class walk as
        // `MultiplierUnit::run_imul_loop`, with the per-class slack,
        // classification and fault probability read from the grid. Both
        // paths stop at the first crashing class without drawing for it,
        // so the RNG stream stays identical.
        if let Some(entry) = self.table.as_ref().and_then(|t| t.entry(f, v_mv)) {
            self.table_hits.set(self.table_hits.get() + 1);
            let mut faults = 0u64;
            for (i, (fraction, _, _)) in MultiplierUnit::IMUL_LOOP_CLASSES.iter().enumerate() {
                let n = (iters as f64 * fraction).round() as u64;
                let op = entry.imul_ops[i];
                if op.state == TimingState::Crash {
                    return BatchOutcome::Crashed;
                }
                faults += sample_binomial(n, op.fault_p, rng);
            }
            return BatchOutcome::Retired { faults };
        }
        self.table_fallbacks.set(self.table_fallbacks.get() + 1);
        match self
            .mul
            .run_imul_loop(iters, &self.budget(f), v_mv, &self.fault_model, rng)
        {
            plugvolt_circuit::multiplier::LoopOutcome::Completed { faults } => {
                BatchOutcome::Retired { faults }
            }
            plugvolt_circuit::multiplier::LoopOutcome::Crashed { .. } => BatchOutcome::Crashed,
        }
    }

    /// Runs a batch of `iters` instructions of `class`, sampling faults in
    /// O(faults) time. The class picks its timing rail from `rails`.
    #[must_use]
    pub fn run_batch_on_rails(
        &self,
        class: InstrClass,
        iters: u64,
        f: FreqMhz,
        rails: Rails,
        rng: &mut SimRng,
    ) -> BatchOutcome {
        let v_mv = rails.for_class(class);
        // Table fast path: the cached entry stores this exact voltage's
        // slack, classification and fault probability, so the outcome and
        // the RNG draws match the analytic expressions below bit for bit.
        if let Some(entry) = self.table.as_ref().and_then(|t| t.entry(f, v_mv)) {
            self.table_hits.set(self.table_hits.get() + 1);
            let cached = entry.classes[class_index(class)];
            if cached.state == TimingState::Crash {
                return BatchOutcome::Crashed;
            }
            return BatchOutcome::Retired {
                faults: sample_binomial(iters, cached.fault_p, rng),
            };
        }
        self.table_fallbacks.set(self.table_fallbacks.get() + 1);
        let slack = self.class_slack_ps(class, f, v_mv);
        if self.fault_model.classify(slack) == TimingState::Crash {
            return BatchOutcome::Crashed;
        }
        BatchOutcome::Retired {
            faults: self.fault_model.sample_fault_count(slack, iters, rng),
        }
    }

    /// Runs a batch with both planes at `v_mv` (see
    /// [`run_batch_on_rails`](Self::run_batch_on_rails)).
    #[must_use]
    pub fn run_batch(
        &self,
        class: InstrClass,
        iters: u64,
        f: FreqMhz,
        v_mv: Millivolts,
        rng: &mut SimRng,
    ) -> BatchOutcome {
        self.run_batch_on_rails(class, iters, f, Rails::uniform(v_mv), rng)
    }

    /// Wall-clock duration of a batch of `iters` instructions of `class`
    /// at frequency `f`.
    #[must_use]
    pub fn batch_duration(&self, class: InstrClass, iters: u64, f: FreqMhz) -> SimDuration {
        let cycles = (iters as f64 * class.cpi()).ceil() as u64;
        SimDuration::from_cycles(cycles, f.mhz())
    }

    /// Cost of one `rdmsr`/`wrmsr` microcode flow at frequency `f`
    /// (≈ 250 core cycles on real parts).
    #[must_use]
    pub fn msr_access_duration(&self, f: FreqMhz) -> SimDuration {
        SimDuration::from_cycles(250, f.mhz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CpuModel;

    fn engine() -> ExecutionEngine {
        let spec = CpuModel::CometLake.spec();
        ExecutionEngine::new(
            spec.multiplier(),
            spec.fault_model(),
            spec.t_setup_ps,
            spec.t_eps_ps,
        )
    }

    fn rng() -> SimRng {
        SimRng::from_seed_label(3, "exec-tests")
    }

    #[test]
    fn class_depths_are_ordered() {
        let e = engine();
        let v = 900.0;
        let d = |c| e.class_path_delay_ps(c, v);
        assert!(d(InstrClass::Imul) > d(InstrClass::Fma));
        assert!(d(InstrClass::Fma) > d(InstrClass::Aesenc));
        assert!(d(InstrClass::Aesenc) > d(InstrClass::Load));
        assert!(d(InstrClass::Load) > d(InstrClass::AluAdd));
    }

    #[test]
    fn imul_faults_before_alu() {
        // Scanning down in voltage, imul must leave the safe region first:
        // the paper's reason for choosing it in the EXECUTE thread.
        let e = engine();
        let f = FreqMhz(3_000);
        let onset = |class: InstrClass| {
            for v in (400..=1_200).rev() {
                if e.fault_model()
                    .classify(e.class_slack_ps(class, f, f64::from(v)))
                    != TimingState::Safe
                {
                    return v;
                }
            }
            0
        };
        assert!(onset(InstrClass::Imul) > onset(InstrClass::Aesenc));
        assert!(onset(InstrClass::Aesenc) > onset(InstrClass::AluAdd));
    }

    #[test]
    fn nominal_batches_never_fault() {
        let e = engine();
        let spec = CpuModel::CometLake.spec();
        let mut r = rng();
        for f in [FreqMhz(400), FreqMhz(1_800), FreqMhz(4_900)] {
            let v = spec.nominal_voltage_mv(f);
            for class in InstrClass::ALL {
                let out = e.run_batch(class, 1_000_000, f, v, &mut r);
                assert_eq!(out, BatchOutcome::Retired { faults: 0 }, "{class:?} at {f}");
            }
        }
    }

    #[test]
    fn batch_durations_scale_with_cpi_and_freq() {
        let e = engine();
        let fast = e.batch_duration(InstrClass::AluAdd, 1_000_000, FreqMhz(2_000));
        let slow = e.batch_duration(InstrClass::Imul, 1_000_000, FreqMhz(2_000));
        assert!(slow > fast);
        let half_clock = e.batch_duration(InstrClass::Imul, 1_000_000, FreqMhz(1_000));
        assert_eq!(half_clock.as_picos(), slow.as_picos() * 2);
    }

    #[test]
    fn execute_imul_correct_at_nominal() {
        let e = engine();
        let spec = CpuModel::CometLake.spec();
        let f = spec.base_freq;
        let v = spec.nominal_voltage_mv(f);
        let mut r = rng();
        let ex = e.execute_imul(0xDEAD_BEEF_CAFE_F00D, 0x1234_5678_9ABC_DEF0, f, v, &mut r);
        assert_eq!(
            ex.value,
            0xDEAD_BEEF_CAFE_F00Du64.wrapping_mul(0x1234_5678_9ABC_DEF0)
        );
    }

    #[test]
    fn deep_undervolt_crashes_batch() {
        let e = engine();
        let out = e.run_batch(InstrClass::Imul, 1_000, FreqMhz(4_900), 450.0, &mut rng());
        assert_eq!(out, BatchOutcome::Crashed);
        assert_eq!(out.faults(), None);
    }

    #[test]
    fn msr_access_cost_is_hundreds_of_cycles() {
        let e = engine();
        let d = e.msr_access_duration(FreqMhz(2_500));
        assert_eq!(d.as_picos(), 250 * 400); // 250 cycles at 400 ps each
    }
}
