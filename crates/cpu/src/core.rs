//! Per-core architectural state: P-states and C-states.

use crate::freq::FreqMhz;
use serde::{Deserialize, Serialize};

/// Identifies a core within a package.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct CoreId(pub usize);

/// The idleness spectrum of a core: executing (**P**-state, with its
/// operating frequency) or idle (**C**-state, with components power-gated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerState {
    /// Executing at some point of the P-state spectrum.
    PState {
        /// Current operating frequency.
        freq: FreqMhz,
    },
    /// Idle; deeper levels gate more of the core.
    CState {
        /// Idle depth (C1 = halt … C6 = power-gated).
        level: u8,
    },
}

/// One physical core.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Core {
    id: CoreId,
    state: PowerState,
    /// Frequency to resume at after idle, and the current one while running.
    last_freq: FreqMhz,
}

impl Core {
    /// Creates a core executing at `freq`.
    #[must_use]
    pub fn new(id: CoreId, freq: FreqMhz) -> Self {
        Core {
            id,
            state: PowerState::PState { freq },
            last_freq: freq,
        }
    }

    /// The core's identifier.
    #[must_use]
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// The current power state.
    #[must_use]
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// The operating frequency; idle cores report the frequency they will
    /// resume at.
    #[must_use]
    pub fn freq(&self) -> FreqMhz {
        match self.state {
            PowerState::PState { freq } => freq,
            PowerState::CState { .. } => self.resume_freq(),
        }
    }

    fn resume_freq(&self) -> FreqMhz {
        // Idle cores wake at their last requested frequency, which we keep
        // by encoding C-state entry as a wrapper in `enter_idle`.
        match self.state {
            PowerState::PState { freq } => freq,
            PowerState::CState { .. } => self.last_freq,
        }
    }

    /// Sets the operating frequency (also the resume frequency if idle).
    pub fn set_freq(&mut self, freq: FreqMhz) {
        self.last_freq = freq;
        if let PowerState::PState { freq: f } = &mut self.state {
            *f = freq;
        }
    }

    /// Enters an idle C-state.
    pub fn enter_idle(&mut self, level: u8) {
        if let PowerState::PState { freq } = self.state {
            self.last_freq = freq;
        }
        self.state = PowerState::CState { level };
    }

    /// Wakes from idle back into the P-state spectrum.
    pub fn wake(&mut self) {
        self.state = PowerState::PState {
            freq: self.last_freq,
        };
    }

    /// Whether the core is executing.
    #[must_use]
    pub fn is_running(&self) -> bool {
        matches!(self.state, PowerState::PState { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_core_runs() {
        let c = Core::new(CoreId(0), FreqMhz(2_000));
        assert!(c.is_running());
        assert_eq!(c.freq(), FreqMhz(2_000));
        assert_eq!(c.id(), CoreId(0));
    }

    #[test]
    fn idle_remembers_frequency() {
        let mut c = Core::new(CoreId(1), FreqMhz(2_600));
        c.enter_idle(6);
        assert!(!c.is_running());
        assert_eq!(c.state(), PowerState::CState { level: 6 });
        assert_eq!(c.freq(), FreqMhz(2_600));
        c.wake();
        assert!(c.is_running());
        assert_eq!(c.freq(), FreqMhz(2_600));
    }

    #[test]
    fn set_freq_while_idle_applies_on_wake() {
        let mut c = Core::new(CoreId(0), FreqMhz(1_000));
        c.enter_idle(1);
        c.set_freq(FreqMhz(3_000));
        c.wake();
        assert_eq!(c.freq(), FreqMhz(3_000));
    }
}
