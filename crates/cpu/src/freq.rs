//! Core frequency types and the per-model frequency table.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A core frequency in megahertz.
///
/// # Examples
///
/// ```
/// use plugvolt_cpu::freq::FreqMhz;
///
/// let f = FreqMhz(3_200);
/// assert_eq!(f.ghz(), 3.2);
/// assert_eq!(f.period_ps(), 312.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct FreqMhz(pub u32);

impl FreqMhz {
    /// The frequency in GHz.
    #[must_use]
    pub fn ghz(self) -> f64 {
        f64::from(self.0) / 1000.0
    }

    /// The clock period in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[must_use]
    pub fn period_ps(self) -> f64 {
        assert!(self.0 > 0, "zero frequency has no period");
        1e6 / f64::from(self.0)
    }

    /// The raw MHz value.
    #[must_use]
    pub const fn mhz(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FreqMhz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1000) {
            write!(f, "{} GHz", self.0 / 1000)
        } else {
            write!(f, "{:.1} GHz", self.ghz())
        }
    }
}

/// The vendor-set table of permissible core frequencies (the "frequency
/// table" exposed to cpufreq), from `min` to `max` in fixed steps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FreqTable {
    min: FreqMhz,
    max: FreqMhz,
    step: u32,
}

impl FreqTable {
    /// Creates a table spanning `[min, max]` in `step`-MHz increments.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`, `step` is zero, or the span is not a
    /// multiple of `step`.
    #[must_use]
    pub fn new(min: FreqMhz, max: FreqMhz, step: u32) -> Self {
        assert!(min.0 > 0 && min <= max, "invalid frequency range");
        assert!(step > 0, "step must be non-zero");
        assert_eq!(
            (max.0 - min.0) % step,
            0,
            "range must be a multiple of step"
        );
        FreqTable { min, max, step }
    }

    /// Lowest table entry.
    #[must_use]
    pub fn min(&self) -> FreqMhz {
        self.min
    }

    /// Highest table entry.
    #[must_use]
    pub fn max(&self) -> FreqMhz {
        self.max
    }

    /// Step between entries in MHz.
    #[must_use]
    pub fn step_mhz(&self) -> u32 {
        self.step
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        ((self.max.0 - self.min.0) / self.step + 1) as usize
    }

    /// Always false: a table has at least one entry by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `f` is one of the table entries.
    #[must_use]
    pub fn contains(&self, f: FreqMhz) -> bool {
        f >= self.min && f <= self.max && (f.0 - self.min.0).is_multiple_of(self.step)
    }

    /// The table entry closest to `f` (clamping outside the range).
    #[must_use]
    pub fn quantize(&self, f: FreqMhz) -> FreqMhz {
        let clamped = f.0.clamp(self.min.0, self.max.0);
        let steps = (clamped - self.min.0 + self.step / 2) / self.step;
        FreqMhz(self.min.0 + steps * self.step)
    }

    /// Iterates over all entries, ascending.
    pub fn iter(&self) -> impl Iterator<Item = FreqMhz> + '_ {
        (self.min.0..=self.max.0)
            .step_by(self.step as usize)
            .map(FreqMhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> FreqTable {
        FreqTable::new(FreqMhz(800), FreqMhz(3_600), 100)
    }

    #[test]
    fn period_and_ghz() {
        assert_eq!(FreqMhz(1_000).period_ps(), 1_000.0);
        assert_eq!(FreqMhz(2_000).ghz(), 2.0);
    }

    #[test]
    fn display() {
        assert_eq!(FreqMhz(3_000).to_string(), "3 GHz");
        assert_eq!(FreqMhz(3_300).to_string(), "3.3 GHz");
    }

    #[test]
    fn table_len_and_iter() {
        let t = table();
        assert_eq!(t.len(), 29);
        assert!(!t.is_empty());
        let all: Vec<_> = t.iter().collect();
        assert_eq!(all.first(), Some(&FreqMhz(800)));
        assert_eq!(all.last(), Some(&FreqMhz(3_600)));
        assert_eq!(all.len(), t.len());
    }

    #[test]
    fn contains_respects_step() {
        let t = table();
        assert!(t.contains(FreqMhz(1_200)));
        assert!(!t.contains(FreqMhz(1_250)));
        assert!(!t.contains(FreqMhz(700)));
        assert!(!t.contains(FreqMhz(3_700)));
    }

    #[test]
    fn quantize_rounds_and_clamps() {
        let t = table();
        assert_eq!(t.quantize(FreqMhz(1_249)), FreqMhz(1_200));
        assert_eq!(t.quantize(FreqMhz(1_250)), FreqMhz(1_300));
        assert_eq!(t.quantize(FreqMhz(100)), FreqMhz(800));
        assert_eq!(t.quantize(FreqMhz(9_999)), FreqMhz(3_600));
    }

    #[test]
    #[should_panic(expected = "multiple of step")]
    fn misaligned_range_rejected() {
        let _ = FreqTable::new(FreqMhz(800), FreqMhz(3_650), 100);
    }
}
