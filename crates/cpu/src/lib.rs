//! # plugvolt-cpu
//!
//! Simulated Intel-style CPU packages for the *Plug Your Volt* (DAC 2024)
//! reproduction: the three generations the paper evaluates (Sky Lake,
//! Kaby Lake R, Comet Lake), each with its frequency table, V/F curve,
//! slew-limited voltage regulator, overclocking mailbox, microcode
//! sequencer and an execution engine that faults according to the Eq. 1
//! physics of `plugvolt-circuit`.
//!
//! - [`freq`] — frequencies and the vendor frequency table;
//! - [`model`] — the per-generation [`model::CpuSpec`]s;
//! - [`core`] — per-core P/C-state bookkeeping;
//! - [`vr`] — the voltage regulator (settle delay + slew);
//! - [`exec`] — instruction classes and fault-aware batch execution;
//! - [`slack`] — precomputed per-(f, V) slack tables for the hot path;
//! - [`microcode`] — sequencer patches (Sec. 5.1 deployment);
//! - [`package`] — [`package::CpuPackage`], the assembled part.
//!
//! # Examples
//!
//! Undervolt a Comet Lake through MSR 0x150 and watch the rail:
//!
//! ```
//! use plugvolt_cpu::prelude::*;
//! use plugvolt_des::time::{SimDuration, SimTime};
//! use plugvolt_msr::prelude::*;
//!
//! let mut cpu = CpuPackage::new(CpuModel::CometLake, 7);
//! let t0 = SimTime::ZERO;
//! let req = OcRequest::write_offset(-125, Plane::Core).encode();
//! cpu.wrmsr(t0, CoreId(0), Msr::OC_MAILBOX, req)?;
//! let later = cpu.rail_settles_at() + SimDuration::from_micros(1);
//! let nominal = cpu.spec().nominal_voltage_mv(cpu.spec().base_freq);
//! assert!(cpu.core_voltage_mv(later) < nominal - 120.0);
//! # Ok::<(), plugvolt_cpu::package::PackageError>(())
//! ```

#![warn(missing_docs)]

pub mod core;
pub mod energy;
pub mod exec;
pub mod freq;
pub mod microcode;
pub mod model;
pub mod package;
pub mod slack;
pub mod ucode_blob;
pub mod vr;

/// Convenient glob-import of the commonly used names.
pub mod prelude {
    pub use crate::core::{Core, CoreId, PowerState};
    pub use crate::energy::{EnergyMeter, EnergyModel};
    pub use crate::exec::{BatchOutcome, ExecutionEngine, InstrClass};
    pub use crate::freq::{FreqMhz, FreqTable};
    pub use crate::microcode::{MicrocodeUpdate, PatchKind, SequencerHook};
    pub use crate::model::{CpuModel, CpuSpec};
    pub use crate::package::{CpuPackage, PackageError};
    pub use crate::slack::SlackTable;
    pub use crate::ucode_blob::{cpuid_signature, BlobError, UpdateBlob};
    pub use crate::vr::VoltageRegulator;
}
