//! The package voltage regulator (SVID VR) model.
//!
//! Writes to MSR 0x150 do not change the rail instantly: the paper's
//! Sec. 5 lists "the delay between a successful write to MSR 0x150 and
//! the actual change in voltage by the voltage regulator" as one of the
//! two contributors to the kernel-module countermeasure's turnaround
//! time. We model the rail as: a fixed **settle delay** between the write
//! and the start of the ramp, then a linear **slew** toward the target.

use plugvolt_des::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One voltage rail with slew-limited transitions.
///
/// # Examples
///
/// ```
/// use plugvolt_cpu::vr::VoltageRegulator;
/// use plugvolt_des::time::{SimDuration, SimTime};
///
/// let mut vr = VoltageRegulator::new(1_000.0, SimDuration::from_micros(8), 10.0);
/// let t0 = SimTime::ZERO;
/// vr.set_target(t0, 900.0);
/// // Before the settle delay elapses nothing moves:
/// assert_eq!(vr.voltage_mv(t0 + SimDuration::from_micros(5)), 1_000.0);
/// // Long after, the rail sits at the target:
/// assert_eq!(vr.voltage_mv(t0 + SimDuration::from_millis(1)), 900.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoltageRegulator {
    start_mv: f64,
    target_mv: f64,
    ramp_begins: SimTime,
    settle_delay: SimDuration,
    slew_mv_per_us: f64,
}

impl VoltageRegulator {
    /// Creates a regulator resting at `initial_mv`, with the given settle
    /// delay and slew rate.
    ///
    /// # Panics
    ///
    /// Panics if the slew rate is non-positive.
    #[must_use]
    pub fn new(initial_mv: f64, settle_delay: SimDuration, slew_mv_per_us: f64) -> Self {
        assert!(slew_mv_per_us > 0.0, "slew rate must be positive");
        VoltageRegulator {
            start_mv: initial_mv,
            target_mv: initial_mv,
            ramp_begins: SimTime::ZERO,
            settle_delay,
            slew_mv_per_us,
        }
    }

    /// The rail voltage at time `now`.
    #[must_use]
    pub fn voltage_mv(&self, now: SimTime) -> f64 {
        if now <= self.ramp_begins {
            return self.start_mv;
        }
        let elapsed_us = now.saturating_duration_since(self.ramp_begins).as_picos() as f64 / 1e6;
        let max_swing = self.slew_mv_per_us * elapsed_us;
        let want = self.target_mv - self.start_mv;
        if want.abs() <= max_swing {
            self.target_mv
        } else {
            self.start_mv + want.signum() * max_swing
        }
    }

    /// The target the rail is heading toward.
    #[must_use]
    pub fn target_mv(&self) -> f64 {
        self.target_mv
    }

    /// Requests a new target at time `now`. The ramp begins after the
    /// regulator's default settle delay, from wherever the rail is at
    /// that moment.
    pub fn set_target(&mut self, now: SimTime, target_mv: f64) {
        self.set_target_after(now, target_mv, self.settle_delay);
    }

    /// Requests a new target with an explicit command latency. A pending
    /// not-yet-started ramp is *replaced*: if a correcting request lands
    /// inside the previous request's latency window, the rail never moves
    /// toward the old target — the mechanism that lets a fast-polling
    /// countermeasure nullify a slow mailbox undervolt entirely.
    pub fn set_target_after(&mut self, now: SimTime, target_mv: f64, delay: SimDuration) {
        if (target_mv - self.target_mv).abs() < f64::EPSILON {
            return;
        }
        // Freeze the rail where it currently is, then ramp after settling.
        self.start_mv = self.voltage_mv(now);
        self.ramp_begins = now + delay;
        self.target_mv = target_mv;
    }

    /// When the rail will have fully reached its target (an instant in
    /// the past if it already has).
    #[must_use]
    pub fn settles_at(&self) -> SimTime {
        let swing = (self.target_mv - self.start_mv).abs();
        let ramp_us = swing / self.slew_mv_per_us;
        self.ramp_begins + SimDuration::from_picos((ramp_us * 1e6).ceil() as u64)
    }

    /// Whether the rail is at its target at `now`.
    #[must_use]
    pub fn is_settled(&self, now: SimTime) -> bool {
        now >= self.settles_at()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    fn vr() -> VoltageRegulator {
        VoltageRegulator::new(1_000.0, us(8), 10.0)
    }

    #[test]
    fn idle_rail_holds_voltage() {
        let v = vr();
        assert_eq!(v.voltage_mv(SimTime::ZERO), 1_000.0);
        assert_eq!(v.voltage_mv(SimTime::ZERO + us(1_000)), 1_000.0);
        assert!(v.is_settled(SimTime::ZERO));
    }

    #[test]
    fn settle_delay_gates_the_ramp() {
        let mut v = vr();
        v.set_target(SimTime::ZERO, 900.0);
        assert_eq!(v.voltage_mv(SimTime::ZERO + us(7)), 1_000.0);
        let mid = v.voltage_mv(SimTime::ZERO + us(13)); // 5 µs into the ramp
        assert!((mid - 950.0).abs() < 1e-9, "mid={mid}");
    }

    #[test]
    fn ramp_completes_at_slew_rate() {
        let mut v = vr();
        v.set_target(SimTime::ZERO, 900.0);
        // 100 mV at 10 mV/µs = 10 µs of ramp + 8 µs settle.
        assert!((v.voltage_mv(SimTime::ZERO + us(18)) - 900.0).abs() < 1e-9);
        assert_eq!(v.settles_at(), SimTime::ZERO + us(18));
        assert!(v.is_settled(SimTime::ZERO + us(18)));
        assert!(!v.is_settled(SimTime::ZERO + us(17)));
    }

    #[test]
    fn upward_ramp_symmetrical() {
        let mut v = vr();
        v.set_target(SimTime::ZERO, 1_100.0);
        let mid = v.voltage_mv(SimTime::ZERO + us(13));
        assert!((mid - 1_050.0).abs() < 1e-9);
        assert_eq!(v.voltage_mv(SimTime::ZERO + us(50)), 1_100.0);
    }

    #[test]
    fn retarget_mid_ramp_starts_from_current_voltage() {
        let mut v = vr();
        v.set_target(SimTime::ZERO, 900.0);
        // At 13 µs the rail is at 950 mV; retarget back up to 1000.
        let t = SimTime::ZERO + us(13);
        v.set_target(t, 1_000.0);
        assert!(
            (v.voltage_mv(t + us(4)) - 950.0).abs() < 1e-9,
            "still settling"
        );
        // 50 mV to climb at 10 mV/µs after the 8 µs settle.
        assert!((v.voltage_mv(t + us(13)) - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn same_target_is_a_no_op() {
        let mut v = vr();
        v.set_target(SimTime::ZERO, 900.0);
        let settles = v.settles_at();
        // Re-requesting the identical target later must not restart the ramp.
        v.set_target(SimTime::ZERO + us(2), 900.0);
        assert_eq!(v.settles_at(), settles);
    }

    #[test]
    fn target_getter() {
        let mut v = vr();
        v.set_target(SimTime::ZERO, 875.5);
        assert_eq!(v.target_mv(), 875.5);
    }
}
