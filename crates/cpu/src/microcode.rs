//! The microcode sequencer layer (Sec. 5.1 deployment point).
//!
//! Microcode updates are loaded through BIOS/UEFI at reset and can patch
//! CPU behaviour in place. The sequencer handles conditional microcode
//! branches, which makes it the natural host for the paper's deeper
//! countermeasure deployment: when a `wrmsr` targets MSR 0x150 with an
//! offset that would violate the **maximal safe state**, a conditional
//! branch simply *ignores* the write — behaviour Intel already implements
//! on several other MSRs.

use plugvolt_msr::addr::Msr;
use plugvolt_msr::file::{MsrInterceptor, WriteDisposition};
use plugvolt_msr::oc_mailbox::OcRequest;
use serde::{Deserialize, Serialize};

/// The behavioural payload of a microcode update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatchKind {
    /// Sec. 5.1: write-ignore any 0x150 request undervolting past the
    /// maximal safe state.
    WriteIgnoreUnsafeMailbox {
        /// The maximal safe state bound (non-positive mV).
        max_offset_mv: i32,
    },
    /// Intel's CVE-2019-11157 response: disable the overclocking mailbox
    /// outright (all 0x150 writes are ignored).
    DisableOcMailbox,
}

/// A microcode update: a revision number plus its behavioural patch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicrocodeUpdate {
    /// Revision reported in `IA32_BIOS_SIGN_ID` once loaded.
    pub revision: u32,
    /// What the patch does.
    pub kind: PatchKind,
}

impl MicrocodeUpdate {
    /// Builds the Sec. 5.1 maximal-safe-state patch.
    ///
    /// # Panics
    ///
    /// Panics if `max_offset_mv` is positive.
    #[must_use]
    pub fn maximal_safe_state(revision: u32, max_offset_mv: i32) -> Self {
        assert!(
            max_offset_mv <= 0,
            "maximal safe state is an undervolt bound"
        );
        MicrocodeUpdate {
            revision,
            kind: PatchKind::WriteIgnoreUnsafeMailbox { max_offset_mv },
        }
    }

    /// Builds the Intel OCM-disable patch.
    #[must_use]
    pub fn disable_ocm(revision: u32) -> Self {
        MicrocodeUpdate {
            revision,
            kind: PatchKind::DisableOcMailbox,
        }
    }

    /// The interceptor name this update registers under.
    #[must_use]
    pub fn interceptor_name(&self) -> &'static str {
        match self.kind {
            PatchKind::WriteIgnoreUnsafeMailbox { .. } => "ucode-maximal-safe-state",
            PatchKind::DisableOcMailbox => "ucode-disable-ocm",
        }
    }
}

/// The sequencer hook: an [`MsrInterceptor`] enforcing a microcode patch.
#[derive(Debug, Clone)]
pub struct SequencerHook {
    update: MicrocodeUpdate,
    /// Writes the patch ignored so far (diagnostic counter).
    ignored: u64,
}

impl SequencerHook {
    /// Wraps an update as a live sequencer hook.
    #[must_use]
    pub fn new(update: MicrocodeUpdate) -> Self {
        SequencerHook { update, ignored: 0 }
    }

    /// How many writes this patch has ignored.
    #[must_use]
    pub fn ignored_writes(&self) -> u64 {
        self.ignored
    }
}

impl MsrInterceptor for SequencerHook {
    fn name(&self) -> &str {
        self.update.interceptor_name()
    }

    fn on_write(&mut self, msr: Msr, value: u64) -> WriteDisposition {
        if msr != Msr::OC_MAILBOX {
            return WriteDisposition::Allow;
        }
        match self.update.kind {
            PatchKind::DisableOcMailbox => {
                self.ignored += 1;
                WriteDisposition::Ignore
            }
            PatchKind::WriteIgnoreUnsafeMailbox { max_offset_mv } => {
                match OcRequest::decode(value) {
                    Ok(req) if req.is_write() && req.offset_mv() < max_offset_mv => {
                        self.ignored += 1;
                        WriteDisposition::Ignore
                    }
                    // Reads, safe writes and malformed values (which the
                    // mailbox hardware rejects anyway) pass through.
                    _ => WriteDisposition::Allow,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plugvolt_msr::oc_mailbox::Plane;

    #[test]
    fn maximal_safe_state_patch_filters_by_depth() {
        let mut hook = SequencerHook::new(MicrocodeUpdate::maximal_safe_state(0xf5, -125));
        let safe = OcRequest::write_offset(-100, Plane::Core).encode();
        let unsafe_ = OcRequest::write_offset(-250, Plane::Core).encode();
        assert_eq!(
            hook.on_write(Msr::OC_MAILBOX, safe),
            WriteDisposition::Allow
        );
        assert_eq!(
            hook.on_write(Msr::OC_MAILBOX, unsafe_),
            WriteDisposition::Ignore
        );
        assert_eq!(hook.ignored_writes(), 1);
    }

    #[test]
    fn disable_ocm_ignores_everything() {
        let mut hook = SequencerHook::new(MicrocodeUpdate::disable_ocm(0xf6));
        let read = OcRequest::read(Plane::Core).encode();
        assert_eq!(
            hook.on_write(Msr::OC_MAILBOX, read),
            WriteDisposition::Ignore
        );
    }

    #[test]
    fn other_msrs_pass_through() {
        let mut hook = SequencerHook::new(MicrocodeUpdate::maximal_safe_state(0xf5, -125));
        assert_eq!(
            hook.on_write(Msr::IA32_PERF_CTL, 0xFFFF),
            WriteDisposition::Allow
        );
        let mut hook = SequencerHook::new(MicrocodeUpdate::disable_ocm(0xf6));
        assert_eq!(
            hook.on_write(Msr::IA32_PERF_CTL, 0xFFFF),
            WriteDisposition::Allow
        );
    }

    #[test]
    fn reads_pass_the_safe_state_patch() {
        let mut hook = SequencerHook::new(MicrocodeUpdate::maximal_safe_state(0xf5, -125));
        let read = OcRequest::read(Plane::Core).encode();
        assert_eq!(
            hook.on_write(Msr::OC_MAILBOX, read),
            WriteDisposition::Allow
        );
    }

    #[test]
    fn malformed_values_pass_through() {
        let mut hook = SequencerHook::new(MicrocodeUpdate::maximal_safe_state(0xf5, -125));
        // Run bit clear: mailbox hardware will reject; microcode lets it by.
        assert_eq!(hook.on_write(Msr::OC_MAILBOX, 0), WriteDisposition::Allow);
    }

    #[test]
    fn boundary_offset_is_allowed() {
        let mut hook = SequencerHook::new(MicrocodeUpdate::maximal_safe_state(0xf5, -125));
        let at_bound = OcRequest::write_offset(-125, Plane::Core).encode();
        assert_eq!(
            hook.on_write(Msr::OC_MAILBOX, at_bound),
            WriteDisposition::Allow
        );
    }

    #[test]
    #[should_panic(expected = "undervolt bound")]
    fn positive_bound_rejected() {
        let _ = MicrocodeUpdate::maximal_safe_state(0xf5, 10);
    }
}
