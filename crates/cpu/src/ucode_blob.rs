//! Microcode update *blobs* — the distributable artifact of Sec. 5.1.
//!
//! Real Intel microcode updates travel as binary files with a 48-byte
//! header (header version, update revision, BCD date, processor
//! signature, checksum, loader revision, processor flags, sizes) whose
//! dword sum must be zero; the BIOS/OS loader validates the header and
//! the CPUID signature before handing the payload to the sequencer. We
//! implement that container for the maximal-safe-state patch so the
//! vendor→BIOS→sequencer pipeline is exercised end to end, including the
//! rejection paths (bad checksum, wrong part, truncation).

use crate::microcode::{MicrocodeUpdate, PatchKind};
use crate::model::CpuModel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Header version used by the Intel container format.
pub const HEADER_VERSION: u32 = 1;
/// Loader revision we emit.
pub const LOADER_REVISION: u32 = 1;
/// Size of the fixed header in bytes.
pub const HEADER_BYTES: usize = 48;

/// Errors while parsing or validating a blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlobError {
    /// Shorter than the fixed header, or shorter than `total_size`.
    Truncated,
    /// Unknown header version.
    BadHeaderVersion(u32),
    /// Dword sum over `total_size` is not zero.
    BadChecksum,
    /// Sizes are inconsistent (not dword multiples, data > total…).
    BadSizes,
    /// The payload's patch kind byte is unknown.
    BadPayload,
    /// The blob targets a different processor signature.
    WrongProcessor {
        /// Signature in the blob.
        blob: u32,
        /// Signature of the part attempting the load.
        part: u32,
    },
}

impl fmt::Display for BlobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlobError::Truncated => write!(f, "blob truncated"),
            BlobError::BadHeaderVersion(v) => write!(f, "unknown header version {v}"),
            BlobError::BadChecksum => write!(f, "checksum mismatch"),
            BlobError::BadSizes => write!(f, "inconsistent size fields"),
            BlobError::BadPayload => write!(f, "unknown patch payload"),
            BlobError::WrongProcessor { blob, part } => {
                write!(f, "blob for cpuid {blob:#x}, this part is {part:#x}")
            }
        }
    }
}

impl std::error::Error for BlobError {}

/// A parsed microcode update container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateBlob {
    /// The behavioural update carried in the payload.
    pub update: MicrocodeUpdate,
    /// Targeted processor signature (CPUID leaf 1 EAX).
    pub processor_signature: u32,
    /// Release date, BCD `mmddyyyy` as in the real format.
    pub date_bcd: u32,
}

impl UpdateBlob {
    /// Packages an update for a CPU model, dated `date_bcd`
    /// (e.g. `0x0607_2026` = June 7, 2026).
    #[must_use]
    pub fn package(update: MicrocodeUpdate, model: CpuModel, date_bcd: u32) -> Self {
        UpdateBlob {
            update,
            processor_signature: cpuid_signature(model),
            date_bcd,
        }
    }

    /// Serializes to the container format.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let payload = encode_payload(&self.update);
        let data_size = payload.len() as u32;
        let total_size = (HEADER_BYTES as u32 + data_size).next_multiple_of(4);
        let mut out = Vec::with_capacity(total_size as usize);
        let mut push = |v: u32| out.extend_from_slice(&v.to_le_bytes());
        push(HEADER_VERSION); //  0: header version
        push(self.update.revision); //  4: update revision
        push(self.date_bcd); //  8: date
        push(self.processor_signature); // 12: processor signature
        push(0); // 16: checksum placeholder
        push(LOADER_REVISION); // 20: loader revision
        push(0x01); // 24: processor flags (slot 0)
        push(data_size); // 28: data size
        push(total_size); // 32: total size
        push(0); // 36: reserved
        push(0); // 40: reserved
        push(0); // 44: reserved
        out.extend_from_slice(&payload);
        out.resize(total_size as usize, 0);
        // Fix up the checksum so the dword sum over the whole image is 0.
        let sum = dword_sum(&out);
        let fix = 0u32.wrapping_sub(sum);
        out[16..20].copy_from_slice(&fix.to_le_bytes());
        debug_assert_eq!(dword_sum(&out), 0);
        out
    }

    /// Parses and validates a container (checksum, sizes, payload).
    ///
    /// # Errors
    ///
    /// Any [`BlobError`] except `WrongProcessor` (signature matching is
    /// the *loader's* job — see [`validate_for`](Self::validate_for)).
    pub fn decode(bytes: &[u8]) -> Result<Self, BlobError> {
        if bytes.len() < HEADER_BYTES {
            return Err(BlobError::Truncated);
        }
        let dword = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().expect("4 bytes"));
        if dword(0) != HEADER_VERSION {
            return Err(BlobError::BadHeaderVersion(dword(0)));
        }
        let revision = dword(4);
        let date_bcd = dword(8);
        let processor_signature = dword(12);
        let data_size = dword(28) as usize;
        let total_size = dword(32) as usize;
        if !total_size.is_multiple_of(4)
            || total_size < HEADER_BYTES
            || data_size > total_size - HEADER_BYTES
        {
            return Err(BlobError::BadSizes);
        }
        if bytes.len() < total_size {
            return Err(BlobError::Truncated);
        }
        if dword_sum(&bytes[..total_size]) != 0 {
            return Err(BlobError::BadChecksum);
        }
        let payload = &bytes[HEADER_BYTES..HEADER_BYTES + data_size];
        let kind = decode_payload(payload)?;
        Ok(UpdateBlob {
            update: MicrocodeUpdate { revision, kind },
            processor_signature,
            date_bcd,
        })
    }

    /// The loader-side signature check: is this blob for `model`?
    ///
    /// # Errors
    ///
    /// [`BlobError::WrongProcessor`] on mismatch.
    pub fn validate_for(&self, model: CpuModel) -> Result<(), BlobError> {
        let part = cpuid_signature(model);
        if self.processor_signature == part {
            Ok(())
        } else {
            Err(BlobError::WrongProcessor {
                blob: self.processor_signature,
                part,
            })
        }
    }
}

/// CPUID leaf-1 EAX signature of each modelled part (real values:
/// family/model/stepping of the i5-6500, i5-8250U and i7-10510U).
#[must_use]
pub fn cpuid_signature(model: CpuModel) -> u32 {
    match model {
        CpuModel::SkyLake => 0x0005_06E3,
        CpuModel::KabyLakeR => 0x0008_06EA,
        CpuModel::CometLake => 0x0008_06EC,
    }
}

fn dword_sum(bytes: &[u8]) -> u32 {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .fold(0u32, u32::wrapping_add)
}

fn encode_payload(update: &MicrocodeUpdate) -> Vec<u8> {
    match update.kind {
        PatchKind::WriteIgnoreUnsafeMailbox { max_offset_mv } => {
            let mut p = vec![0x01, 0, 0, 0];
            p.extend_from_slice(&max_offset_mv.to_le_bytes());
            p
        }
        PatchKind::DisableOcMailbox => vec![0x02, 0, 0, 0],
    }
}

fn decode_payload(payload: &[u8]) -> Result<PatchKind, BlobError> {
    match payload.first() {
        Some(0x01) => {
            if payload.len() < 8 {
                return Err(BlobError::BadPayload);
            }
            let mv = i32::from_le_bytes(payload[4..8].try_into().expect("4 bytes"));
            if mv > 0 {
                return Err(BlobError::BadPayload);
            }
            Ok(PatchKind::WriteIgnoreUnsafeMailbox { max_offset_mv: mv })
        }
        Some(0x02) => Ok(PatchKind::DisableOcMailbox),
        _ => Err(BlobError::BadPayload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob() -> UpdateBlob {
        UpdateBlob::package(
            MicrocodeUpdate::maximal_safe_state(0xf5, -147),
            CpuModel::CometLake,
            0x0607_2026,
        )
    }

    #[test]
    fn round_trip() {
        let b = blob();
        let bytes = b.encode();
        assert!(bytes.len() >= HEADER_BYTES);
        assert_eq!(bytes.len() % 4, 0);
        let back = UpdateBlob::decode(&bytes).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.update.revision, 0xf5);
        assert!(matches!(
            back.update.kind,
            PatchKind::WriteIgnoreUnsafeMailbox {
                max_offset_mv: -147
            }
        ));
    }

    #[test]
    fn disable_ocm_round_trip() {
        let b = UpdateBlob::package(
            MicrocodeUpdate::disable_ocm(0xf6),
            CpuModel::SkyLake,
            0x1201_2019,
        );
        let back = UpdateBlob::decode(&b.encode()).unwrap();
        assert_eq!(back.update.kind, PatchKind::DisableOcMailbox);
        assert_eq!(back.processor_signature, 0x0005_06E3);
    }

    #[test]
    fn checksum_makes_dwords_sum_to_zero() {
        let bytes = blob().encode();
        assert_eq!(dword_sum(&bytes), 0);
    }

    #[test]
    fn corrupted_byte_is_rejected() {
        let bytes = blob().encode();
        for idx in [5, 20, HEADER_BYTES + 2, bytes.len() - 1] {
            let mut corrupt = bytes.clone();
            corrupt[idx] ^= 0x40;
            assert!(
                matches!(
                    UpdateBlob::decode(&corrupt),
                    Err(BlobError::BadChecksum)
                        | Err(BlobError::BadSizes)
                        | Err(BlobError::Truncated)
                ),
                "flip at {idx} slipped through"
            );
        }
        // The original still parses (the flips above were on clones).
        assert!(UpdateBlob::decode(&bytes).is_ok());
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = blob().encode();
        assert_eq!(UpdateBlob::decode(&bytes[..10]), Err(BlobError::Truncated));
        assert_eq!(
            UpdateBlob::decode(&bytes[..bytes.len() - 4]),
            Err(BlobError::Truncated)
        );
    }

    #[test]
    fn wrong_header_version_rejected() {
        let mut bytes = blob().encode();
        bytes[0] = 9;
        // Re-fix the checksum so *only* the version is wrong.
        bytes[16..20].copy_from_slice(&0u32.to_le_bytes());
        let sum = dword_sum(&bytes);
        bytes[16..20].copy_from_slice(&0u32.wrapping_sub(sum).to_le_bytes());
        assert_eq!(
            UpdateBlob::decode(&bytes),
            Err(BlobError::BadHeaderVersion(9))
        );
    }

    #[test]
    fn signature_gate() {
        let b = blob();
        assert!(b.validate_for(CpuModel::CometLake).is_ok());
        assert_eq!(
            b.validate_for(CpuModel::SkyLake),
            Err(BlobError::WrongProcessor {
                blob: 0x0008_06EC,
                part: 0x0005_06E3
            })
        );
    }

    #[test]
    fn positive_bound_payload_rejected() {
        // Hand-craft a payload with a positive (nonsense) bound.
        let mut bytes = blob().encode();
        bytes[HEADER_BYTES + 4..HEADER_BYTES + 8].copy_from_slice(&50i32.to_le_bytes());
        // Re-fix the checksum.
        let total = bytes.len();
        bytes[16..20].copy_from_slice(&0u32.to_le_bytes());
        let sum = dword_sum(&bytes[..total]);
        bytes[16..20].copy_from_slice(&0u32.wrapping_sub(sum).to_le_bytes());
        assert_eq!(UpdateBlob::decode(&bytes), Err(BlobError::BadPayload));
    }

    #[test]
    fn real_cpuid_signatures() {
        assert_eq!(cpuid_signature(CpuModel::SkyLake), 0x506E3);
        assert_eq!(cpuid_signature(CpuModel::KabyLakeR), 0x806EA);
        assert_eq!(cpuid_signature(CpuModel::CometLake), 0x806EC);
    }
}
