//! Timing model of the 64×64 integer multiplier (`imul`) datapath.
//!
//! Prior work (\[15, 14, 19\] in the paper) found `imul` to be the
//! instruction most likely to fault under DVFS attacks, which is why the
//! paper's EXECUTE thread runs a tight loop of one million `imul`
//! iterations with varying 64-bit operands. We model the multiplier as a
//! Booth-encoded Wallace tree followed by a carry-propagate adder:
//!
//! - partial-product reduction depth grows with the *significant width*
//!   of the operands (a 64×64 product exercises the full tree, small
//!   operands only a few levels) — this reproduces Plundervolt's
//!   observation that fault probability is operand-dependent;
//! - the final adder depth grows with the product width.
//!
//! The model is analytic (no per-gate simulation) so characterization
//! sweeps over millions of iterations stay fast.

use crate::delay::{AlphaPowerModel, DelayModel, Millivolts, Picoseconds};
use crate::fault::{FaultModel, FaultOutcome};
use crate::timing::TimingBudget;
use plugvolt_des::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Result of one modelled `imul` execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MulExecution {
    /// The (possibly faulted) low 64 bits of the product, `imul` semantics.
    pub value: u64,
    /// What happened microarchitecturally.
    pub outcome: FaultOutcome,
}

/// The multiplier datapath timing model.
///
/// # Examples
///
/// ```
/// use plugvolt_circuit::multiplier::MultiplierUnit;
///
/// let mul = MultiplierUnit::default();
/// // Wider operands exercise a deeper path:
/// let narrow = mul.path_delay_ps(0xFF, 0xFF, 1_000.0);
/// let wide = mul.path_delay_ps(u64::MAX, u64::MAX, 1_000.0);
/// assert!(wide > narrow);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiplierUnit {
    gate: AlphaPowerModel,
    clk_to_q: AlphaPowerModel,
    /// Fixed wiring/mux overhead per traversal.
    wire_ps: Picoseconds,
    /// Depth (gate levels) of Booth encode + first reduction level.
    base_depth: f64,
    /// Extra levels when the full 64-bit tree + 128-bit CPA is exercised.
    full_width_extra_depth: f64,
}

impl Default for MultiplierUnit {
    /// A unit calibrated for a ≈ 4 GHz-capable core at 1.0 V nominal:
    /// the full-width path consumes ≈ 205 ps at 1 V, leaving typical Intel
    /// guardbands (≈ 100–200 mV) before first faults.
    fn default() -> Self {
        MultiplierUnit::new(
            AlphaPowerModel::calibrated(8.0, 1_000.0, 330.0, 1.35),
            AlphaPowerModel::calibrated(18.0, 1_000.0, 330.0, 1.35),
            15.0,
            6.0,
            15.5,
        )
    }
}

impl MultiplierUnit {
    /// Creates a multiplier model.
    ///
    /// # Panics
    ///
    /// Panics if depths or the wire delay are negative.
    #[must_use]
    pub fn new(
        gate: AlphaPowerModel,
        clk_to_q: AlphaPowerModel,
        wire_ps: Picoseconds,
        base_depth: f64,
        full_width_extra_depth: f64,
    ) -> Self {
        assert!(wire_ps >= 0.0, "wire delay must be non-negative");
        assert!(
            base_depth >= 0.0 && full_width_extra_depth >= 0.0,
            "depths must be non-negative"
        );
        MultiplierUnit {
            gate,
            clk_to_q,
            wire_ps,
            base_depth,
            full_width_extra_depth,
        }
    }

    /// The per-gate delay model.
    #[must_use]
    pub fn gate_model(&self) -> AlphaPowerModel {
        self.gate
    }

    /// Significant width of the product of `a` and `b`: how much of the
    /// reduction tree the operands exercise (1..=64 levels of result bits).
    #[must_use]
    pub fn significant_bits(a: u64, b: u64) -> u32 {
        let wa = 64 - a.leading_zeros();
        let wb = 64 - b.leading_zeros();
        (wa + wb).clamp(2, 64)
    }

    /// Gate-level logic depth exercised by this operand pair.
    #[must_use]
    pub fn depth_for(&self, a: u64, b: u64) -> f64 {
        // Wallace-tree reduction depth grows ≈ log_{3/2}(rows); the CPA
        // depth grows ≈ log2(result width). Both are captured by scaling
        // the extra depth with the fraction of the product width in use.
        let frac = f64::from(Self::significant_bits(a, b)) / 64.0;
        self.base_depth + self.full_width_extra_depth * frac.sqrt()
    }

    /// `T_src + T_prop` for one `imul` traversal at supply `v_mv`.
    #[must_use]
    pub fn path_delay_ps(&self, a: u64, b: u64, v_mv: Millivolts) -> Picoseconds {
        self.clk_to_q.delay_ps(v_mv)
            + self.depth_for(a, b) * self.gate.delay_ps(v_mv)
            + self.wire_ps
    }

    /// Worst-case (full-width) path delay at supply `v_mv`.
    #[must_use]
    pub fn worst_path_delay_ps(&self, v_mv: Millivolts) -> Picoseconds {
        self.path_delay_ps(u64::MAX, u64::MAX, v_mv)
    }

    /// Timing slack of one `imul` with these operands under `budget`.
    #[must_use]
    pub fn slack_ps(&self, a: u64, b: u64, budget: &TimingBudget, v_mv: Millivolts) -> Picoseconds {
        budget.slack_ps(self.path_delay_ps(a, b, v_mv))
    }

    /// Executes one `imul` (low 64 bits of the product, like x86 `imul
    /// r64, r64`) under the fault model.
    pub fn execute(
        &self,
        a: u64,
        b: u64,
        budget: &TimingBudget,
        v_mv: Millivolts,
        fm: &FaultModel,
        rng: &mut SimRng,
    ) -> MulExecution {
        let correct = a.wrapping_mul(b);
        let slack = self.slack_ps(a, b, budget, v_mv);
        let outcome = fm.sample(slack, Self::significant_bits(a, b), rng);
        let value = match outcome {
            FaultOutcome::Faulted { flip_mask } => correct ^ flip_mask,
            _ => correct,
        };
        MulExecution { value, outcome }
    }

    /// The operand-width mix an EXECUTE-thread loop of pseudo-random
    /// 64-bit pairs exercises: `(fraction of iterations, a, b)`. Almost
    /// all random 64-bit pairs are full width, with a thin tail of
    /// narrower products. Public so precomputed slack tables can cache
    /// exactly the `(slack, state, fault probability)` triplets that
    /// [`Self::run_imul_loop`] derives per class.
    pub const IMUL_LOOP_CLASSES: [(f64, u64, u64); 3] = [
        (0.90, u64::MAX, u64::MAX),      // full-width products
        (0.08, u32::MAX as u64, 0xFFFF), // 48-bit products
        (0.02, 0xFFFF, 0xFF),            // 24-bit products
    ];

    /// Number of faulted iterations in a tight loop of `iters` full-width
    /// `imul`s — the paper's EXECUTE-thread workload — sampled in O(faults)
    /// time. Returns `Err(())`-like `None` when the core would crash.
    #[must_use]
    pub fn run_imul_loop(
        &self,
        iters: u64,
        budget: &TimingBudget,
        v_mv: Millivolts,
        fm: &FaultModel,
        rng: &mut SimRng,
    ) -> LoopOutcome {
        // The loop varies operands; model it as a mix of width classes
        // (see [`Self::IMUL_LOOP_CLASSES`]).
        let mut faults = 0u64;
        for (frac, a, b) in Self::IMUL_LOOP_CLASSES {
            let n = (iters as f64 * frac).round() as u64;
            let slack = self.slack_ps(a, b, budget, v_mv);
            if fm.classify(slack) == crate::timing::TimingState::Crash {
                return LoopOutcome::Crashed { completed: 0 };
            }
            faults += fm.sample_fault_count(slack, n, rng);
        }
        LoopOutcome::Completed { faults }
    }
}

/// Outcome of an EXECUTE-thread `imul` loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopOutcome {
    /// The loop ran to completion with this many incorrect products.
    Completed {
        /// Number of iterations whose product was wrong.
        faults: u64,
    },
    /// The core locked up before finishing.
    Crashed {
        /// Iterations retired before the lockup (0 in this model).
        completed: u64,
    },
}

impl LoopOutcome {
    /// Faults observed, if the loop completed.
    #[must_use]
    pub fn faults(self) -> Option<u64> {
        match self {
            LoopOutcome::Completed { faults } => Some(faults),
            LoopOutcome::Crashed { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::from_seed_label(7, "mul-tests")
    }

    #[test]
    fn significant_bits_examples() {
        assert_eq!(MultiplierUnit::significant_bits(0, 0), 2);
        assert_eq!(MultiplierUnit::significant_bits(1, 1), 2);
        assert_eq!(MultiplierUnit::significant_bits(0xFF, 0xFF), 16);
        assert_eq!(MultiplierUnit::significant_bits(u64::MAX, u64::MAX), 64);
        assert_eq!(MultiplierUnit::significant_bits(u64::MAX, 1), 64);
    }

    #[test]
    fn significant_bits_boundary_operands() {
        // Zero and one have zero/one-bit widths; the lower clamp floors
        // the sum at 2 (a product always exercises at least one level).
        assert_eq!(MultiplierUnit::significant_bits(0, 1), 2);
        assert_eq!(MultiplierUnit::significant_bits(1, 0), 2);
        assert_eq!(MultiplierUnit::significant_bits(0, u64::MAX), 64);
        assert_eq!(MultiplierUnit::significant_bits(u64::MAX, 0), 64);
        assert_eq!(MultiplierUnit::significant_bits(1, u64::MAX), 64);
        // 64 + 64 significant bits saturates at the upper clamp.
        assert_eq!(MultiplierUnit::significant_bits(u64::MAX, u64::MAX), 64);
        // Just under the upper clamp: 32 + 31 = 63.
        assert_eq!(
            MultiplierUnit::significant_bits(u32::MAX as u64, (u32::MAX >> 1) as u64),
            63
        );
    }

    #[test]
    fn depth_grows_with_width() {
        let m = MultiplierUnit::default();
        assert!(m.depth_for(3, 3) < m.depth_for(u32::MAX as u64, 0xFFFF));
        assert!(m.depth_for(u32::MAX as u64, 0xFFFF) < m.depth_for(u64::MAX, u64::MAX));
    }

    #[test]
    fn nominal_execution_is_correct() {
        let m = MultiplierUnit::default();
        let budget = TimingBudget::for_frequency_mhz(3_000, 35.0, 15.0);
        let fm = FaultModel::default();
        let mut r = rng();
        for i in 1..200u64 {
            let a = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let b = i.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
            let e = m.execute(a, b, &budget, 1_000.0, &fm, &mut r);
            assert_eq!(e.outcome, FaultOutcome::Correct);
            assert_eq!(e.value, a.wrapping_mul(b));
        }
    }

    #[test]
    fn deep_undervolt_faults_products() {
        let m = MultiplierUnit::default();
        let budget = TimingBudget::for_frequency_mhz(3_000, 35.0, 15.0);
        let fm = FaultModel::default();
        let mut r = rng();
        // Find a voltage that is unsafe but not crashing for full-width ops.
        let mut v = 1_000.0;
        while fm.classify(m.slack_ps(u64::MAX, u64::MAX, &budget, v))
            == crate::timing::TimingState::Safe
        {
            v -= 1.0;
            assert!(v > 300.0, "never left safe region");
        }
        let v = v - 3.0; // a little into the band
        let mut faulted = 0;
        for i in 0..500u64 {
            let a = u64::MAX - i;
            let e = m.execute(a, u64::MAX, &budget, v, &fm, &mut r);
            if e.outcome.is_faulted() {
                faulted += 1;
                assert_ne!(e.value, a.wrapping_mul(u64::MAX));
            }
        }
        assert!(faulted > 0, "no faults in unsafe band");
    }

    #[test]
    fn imul_loop_safe_has_no_faults() {
        let m = MultiplierUnit::default();
        let budget = TimingBudget::for_frequency_mhz(2_000, 35.0, 15.0);
        let fm = FaultModel::default();
        let out = m.run_imul_loop(1_000_000, &budget, 1_000.0, &fm, &mut rng());
        assert_eq!(out, LoopOutcome::Completed { faults: 0 });
        assert_eq!(out.faults(), Some(0));
    }

    #[test]
    fn imul_loop_crashes_when_too_deep() {
        let m = MultiplierUnit::default();
        let budget = TimingBudget::for_frequency_mhz(3_500, 35.0, 15.0);
        let fm = FaultModel::default();
        let out = m.run_imul_loop(1_000, &budget, 400.0, &fm, &mut rng());
        assert_eq!(out, LoopOutcome::Crashed { completed: 0 });
        assert_eq!(out.faults(), None);
    }

    #[test]
    fn loop_fault_onset_is_between_safe_and_crash() {
        let m = MultiplierUnit::default();
        let budget = TimingBudget::for_frequency_mhz(3_000, 35.0, 15.0);
        let fm = FaultModel::default();
        let mut r = rng();
        let mut saw_faults = false;
        let mut prev_crashed = false;
        for v in (500..=1_000).rev().step_by(2) {
            match m.run_imul_loop(1_000_000, &budget, f64::from(v), &fm, &mut r) {
                LoopOutcome::Completed { faults } => {
                    assert!(!prev_crashed, "completed after crash while undervolting");
                    if faults > 0 {
                        saw_faults = true;
                    }
                }
                LoopOutcome::Crashed { .. } => prev_crashed = true,
            }
        }
        assert!(saw_faults, "no fault band before crash");
        assert!(prev_crashed, "never crashed");
    }

    #[test]
    fn worst_path_is_full_width() {
        let m = MultiplierUnit::default();
        assert_eq!(
            m.worst_path_delay_ps(950.0),
            m.path_delay_ps(u64::MAX, u64::MAX, 950.0)
        );
    }
}
