//! Flip-flop timing checks — the paper's Sec. 3 observations O1/O2.
//!
//! The paper restricts its safe-state definitions to the most basic
//! sequential unit, the flip-flop, since flip-flops are the foundation of
//! all sequential design. [`FlipFlop`] captures the three per-element
//! parameters (setup, hold, clock-to-Q) and [`launch_capture_check`]
//! evaluates the full O2 condition for an `F1 → logic → F2` pair.

use crate::delay::{AlphaPowerModel, DelayModel, Millivolts, Picoseconds};
use crate::path::CriticalPath;
use crate::timing::{TimingBudget, TimingState};
use serde::{Deserialize, Serialize};

/// Timing parameters of one flip-flop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlipFlop {
    setup_ps: Picoseconds,
    hold_ps: Picoseconds,
    clk_to_q: AlphaPowerModel,
}

impl FlipFlop {
    /// Creates a flip-flop.
    ///
    /// # Panics
    ///
    /// Panics if setup or hold are negative.
    #[must_use]
    pub fn new(setup_ps: Picoseconds, hold_ps: Picoseconds, clk_to_q: AlphaPowerModel) -> Self {
        assert!(
            setup_ps >= 0.0 && hold_ps >= 0.0,
            "setup/hold must be non-negative"
        );
        FlipFlop {
            setup_ps,
            hold_ps,
            clk_to_q,
        }
    }

    /// Setup time: how long D must be stable *before* the clock edge.
    #[must_use]
    pub fn setup_ps(&self) -> Picoseconds {
        self.setup_ps
    }

    /// Hold time: how long D must be stable *after* the clock edge.
    #[must_use]
    pub fn hold_ps(&self) -> Picoseconds {
        self.hold_ps
    }

    /// Clock-to-Q delay at supply `v_mv` (`T_src` when launching).
    #[must_use]
    pub fn clk_to_q_ps(&self, v_mv: Millivolts) -> Picoseconds {
        self.clk_to_q.delay_ps(v_mv)
    }

    /// The clock-to-Q delay model, for building [`CriticalPath`]s.
    #[must_use]
    pub fn clk_to_q_model(&self) -> AlphaPowerModel {
        self.clk_to_q
    }
}

/// Outcome of a launch/capture timing check (observation O2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaunchCaptureReport {
    /// `T_src + T_prop` at the evaluated voltage.
    pub path_ps: Picoseconds,
    /// `T_clk − T_setup − T_ε`.
    pub available_ps: Picoseconds,
    /// `available − path`; negative is Eq. 3 (unsafe).
    pub slack_ps: Picoseconds,
    /// Classification given the crash margin supplied by the caller.
    pub state: TimingState,
}

/// Evaluates whether launch flip-flop `f1` is in a **safe state** with
/// respect to capture flip-flop `f2`, per the paper's Sec. 3:
///
/// the output of `F1`, after `logic`, must be stable no later than
/// `T_clk − T_ε − T_setup(F2)` in the worst case of early clock arrival.
///
/// `logic` must have been built with `f1`'s clock-to-Q model so `T_src`
/// is accounted exactly once.
#[must_use]
pub fn launch_capture_check(
    f2: &FlipFlop,
    logic: &CriticalPath,
    freq_mhz: u32,
    t_eps_ps: Picoseconds,
    v_mv: Millivolts,
    crash_margin_ps: Picoseconds,
) -> LaunchCaptureReport {
    let budget = TimingBudget::for_frequency_mhz(freq_mhz, f2.setup_ps(), t_eps_ps);
    let path_ps = logic.delay_ps(v_mv);
    let slack_ps = budget.slack_ps(path_ps);
    LaunchCaptureReport {
        path_ps,
        available_ps: budget.available_ps(),
        slack_ps,
        state: TimingState::classify(slack_ps, crash_margin_ps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ff() -> FlipFlop {
        FlipFlop::new(
            35.0,
            5.0,
            AlphaPowerModel::calibrated(40.0, 1_000.0, 320.0, 1.4),
        )
    }

    fn logic(stages: usize) -> CriticalPath {
        let gate = AlphaPowerModel::calibrated(25.0, 1_000.0, 320.0, 1.4);
        CriticalPath::builder(ff().clk_to_q_model())
            .logic_stages(gate, stages)
            .build()
    }

    #[test]
    fn nominal_voltage_is_safe() {
        let r = launch_capture_check(&ff(), &logic(20), 1_000, 15.0, 1_000.0, 150.0);
        assert_eq!(r.state, TimingState::Safe);
        assert!(r.slack_ps > 0.0);
    }

    #[test]
    fn deep_undervolt_is_unsafe_then_crash() {
        let l = logic(20);
        let f2 = ff();
        // Find the first unsafe voltage by scanning down.
        let mut unsafe_seen = false;
        let mut crash_seen = false;
        let mut prev = TimingState::Safe;
        for v in (330..=1_000).rev().step_by(5) {
            let r = launch_capture_check(&f2, &l, 1_000, 15.0, f64::from(v), 150.0);
            match r.state {
                TimingState::Safe => {
                    assert!(!unsafe_seen, "safe after unsafe while undervolting");
                }
                TimingState::Unsafe => {
                    unsafe_seen = true;
                    assert!(!crash_seen, "unsafe after crash while undervolting");
                }
                TimingState::Crash => crash_seen = true,
            }
            prev = r.state;
        }
        assert!(unsafe_seen, "never entered unsafe region");
        assert!(crash_seen, "never crashed");
        assert_eq!(prev, TimingState::Crash);
    }

    #[test]
    fn higher_frequency_faults_at_shallower_offset() {
        // The fault-onset voltage should rise with frequency — the shape
        // behind Figures 2–4 of the paper.
        let l = logic(20);
        let f2 = ff();
        let onset = |freq: u32| -> f64 {
            for v in (330..=1_300).rev() {
                let r = launch_capture_check(&f2, &l, freq, 15.0, f64::from(v), 1e9);
                if r.state != TimingState::Safe {
                    return f64::from(v);
                }
            }
            330.0
        };
        assert!(onset(2_000) > onset(1_200));
        assert!(onset(1_200) > onset(800));
    }

    #[test]
    fn report_is_internally_consistent() {
        let r = launch_capture_check(&ff(), &logic(10), 1_500, 15.0, 900.0, 150.0);
        assert!((r.available_ps - r.path_ps - r.slack_ps).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_setup_rejected() {
        let _ = FlipFlop::new(-1.0, 0.0, AlphaPowerModel::new(10.0, 300.0, 1.4));
    }
}
