//! Voltage-dependent gate delay models.
//!
//! Undervolting slows CMOS logic: lower supply voltage means smaller
//! voltage swings and slower transistor switching, which stretches the
//! `T_src` and `T_prop` terms of the paper's Eq. 1 while leaving `T_clk`,
//! `T_setup` and `T_ε` untouched. The standard first-order description is
//! the **alpha-power law** (Sakurai–Newton):
//!
//! ```text
//! D(V) = K · V / (V − V_th)^α
//! ```
//!
//! with threshold voltage `V_th` and velocity-saturation index `α`
//! (≈ 1.3–1.5 for modern short-channel processes). As `V → V_th` the delay
//! diverges — the physical root cause of every DVFS fault attack.

use serde::{Deserialize, Serialize};

/// Millivolts, the unit of every supply/threshold voltage in this crate.
pub type Millivolts = f64;

/// Picoseconds, the unit of every delay in this crate.
pub type Picoseconds = f64;

/// A voltage-to-delay model for one logic stage.
pub trait DelayModel {
    /// Propagation delay of the stage at supply voltage `v_mv`.
    ///
    /// Returns [`f64::INFINITY`] when the stage cannot switch at all
    /// (supply at or below threshold).
    fn delay_ps(&self, v_mv: Millivolts) -> Picoseconds;

    /// The supply voltage at which the stage reaches exactly `target_ps`,
    /// found by bisection. Returns `None` if the stage is faster than
    /// `target_ps` even at `lo_mv`, or slower even at `hi_mv`.
    fn voltage_for_delay(
        &self,
        target_ps: Picoseconds,
        lo_mv: Millivolts,
        hi_mv: Millivolts,
    ) -> Option<Millivolts> {
        if lo_mv >= hi_mv || target_ps <= 0.0 {
            return None;
        }
        // Delay decreases monotonically with voltage.
        let d_lo = self.delay_ps(lo_mv);
        let d_hi = self.delay_ps(hi_mv);
        if d_hi > target_ps || d_lo < target_ps {
            return None;
        }
        let (mut lo, mut hi) = (lo_mv, hi_mv);
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.delay_ps(mid) > target_ps {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(0.5 * (lo + hi))
    }
}

/// Sakurai–Newton alpha-power-law delay model.
///
/// # Examples
///
/// ```
/// use plugvolt_circuit::delay::{AlphaPowerModel, DelayModel};
///
/// let m = AlphaPowerModel::new(60.0, 320.0, 1.4);
/// // Undervolting slows the gate down:
/// assert!(m.delay_ps(900.0) > m.delay_ps(1_000.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlphaPowerModel {
    k_ps: f64,
    vth_mv: Millivolts,
    alpha: f64,
}

impl AlphaPowerModel {
    /// Creates a model with drive constant `k_ps` (picoseconds · volts^(α−1)),
    /// threshold voltage `vth_mv` and index `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or `alpha < 1`.
    #[must_use]
    pub fn new(k_ps: f64, vth_mv: Millivolts, alpha: f64) -> Self {
        assert!(k_ps > 0.0, "drive constant must be positive");
        assert!(vth_mv > 0.0, "threshold voltage must be positive");
        assert!(alpha >= 1.0, "alpha below 1 is unphysical");
        AlphaPowerModel {
            k_ps,
            vth_mv,
            alpha,
        }
    }

    /// Calibrates the drive constant so the stage exhibits `delay_ps` at
    /// supply `v_mv`, keeping `vth_mv` and `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `v_mv <= vth_mv` or `delay_ps <= 0`.
    #[must_use]
    pub fn calibrated(
        delay_ps: Picoseconds,
        v_mv: Millivolts,
        vth_mv: Millivolts,
        alpha: f64,
    ) -> Self {
        assert!(v_mv > vth_mv, "calibration point must be above threshold");
        assert!(delay_ps > 0.0, "calibration delay must be positive");
        let shape = (v_mv / 1000.0) / ((v_mv - vth_mv) / 1000.0).powf(alpha);
        AlphaPowerModel::new(delay_ps / shape, vth_mv, alpha)
    }

    /// The threshold voltage.
    #[must_use]
    pub fn vth_mv(&self) -> Millivolts {
        self.vth_mv
    }

    /// The velocity-saturation index.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The drive constant.
    #[must_use]
    pub fn k_ps(&self) -> f64 {
        self.k_ps
    }
}

impl DelayModel for AlphaPowerModel {
    fn delay_ps(&self, v_mv: Millivolts) -> Picoseconds {
        if v_mv <= self.vth_mv {
            return f64::INFINITY;
        }
        let v = v_mv / 1000.0;
        let overdrive = (v_mv - self.vth_mv) / 1000.0;
        self.k_ps * v / overdrive.powf(self.alpha)
    }
}

/// A fixed, voltage-independent delay (wire delay, clock-tree insertion…).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantDelay(pub Picoseconds);

impl DelayModel for ConstantDelay {
    fn delay_ps(&self, _v_mv: Millivolts) -> Picoseconds {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AlphaPowerModel {
        AlphaPowerModel::new(60.0, 320.0, 1.4)
    }

    #[test]
    fn delay_monotonically_decreases_with_voltage() {
        let m = model();
        let mut prev = f64::INFINITY;
        for v in (400..1300).step_by(25) {
            let d = m.delay_ps(f64::from(v));
            assert!(d < prev, "delay not monotone at {v} mV");
            prev = d;
        }
    }

    #[test]
    fn delay_diverges_at_threshold() {
        let m = model();
        assert!(m.delay_ps(320.0).is_infinite());
        assert!(m.delay_ps(100.0).is_infinite());
        assert!(m.delay_ps(321.0) > m.delay_ps(400.0) * 10.0);
    }

    #[test]
    fn calibration_reproduces_anchor_point() {
        let m = AlphaPowerModel::calibrated(250.0, 1_000.0, 320.0, 1.4);
        assert!((m.delay_ps(1_000.0) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn voltage_for_delay_inverts_delay() {
        let m = model();
        let target = m.delay_ps(850.0);
        let v = m
            .voltage_for_delay(target, 400.0, 1_300.0)
            .expect("in range");
        assert!((v - 850.0).abs() < 0.01, "v={v}");
    }

    #[test]
    fn voltage_for_delay_out_of_range() {
        let m = model();
        // Target faster than the gate can ever be in range.
        assert!(m.voltage_for_delay(1.0, 400.0, 1_300.0).is_none());
        // Target slower than the gate at the low end.
        let huge = m.delay_ps(401.0) * 10.0;
        assert!(m.voltage_for_delay(huge, 400.0, 1_300.0).is_none());
        // Degenerate interval.
        assert!(m.voltage_for_delay(100.0, 900.0, 900.0).is_none());
    }

    #[test]
    fn constant_delay_ignores_voltage() {
        let c = ConstantDelay(12.5);
        assert_eq!(c.delay_ps(500.0), 12.5);
        assert_eq!(c.delay_ps(1_200.0), 12.5);
    }

    #[test]
    #[should_panic(expected = "unphysical")]
    fn alpha_below_one_rejected() {
        let _ = AlphaPowerModel::new(10.0, 300.0, 0.9);
    }
}
