//! # plugvolt-circuit
//!
//! Sequential-circuit timing and undervolting fault model for the
//! *Plug Your Volt* (DAC 2024) reproduction — the physics layer that the
//! simulated CPUs of `plugvolt-cpu` fault through.
//!
//! The paper's Eq. 1 governs everything here:
//!
//! ```text
//! T_src + T_prop ≤ T_clk − T_setup − T_ε
//! ```
//!
//! - [`delay`] — how undervolting stretches `T_src`/`T_prop`
//!   (alpha-power-law gate delays);
//! - [`timing`] — the budget side (`T_clk`, `T_setup`, `T_ε`), slack and
//!   the safe/unsafe/crash classification;
//! - [`path`] — structural critical paths (launch FF + logic stages);
//! - [`flipflop`] — observation O1/O2 launch–capture checks;
//! - [`multiplier`] — the `imul` datapath model used by the paper's
//!   EXECUTE thread, with operand-dependent depth;
//! - [`fault`] — the stochastic fault band and Plundervolt-style bit-flip
//!   sampling;
//! - [`netlist`] — exact gate-level ground truth (generated adders and
//!   multipliers) validating the analytic models.
//!
//! # Examples
//!
//! Where does a 3 GHz multiplier start faulting as we undervolt?
//!
//! ```
//! use plugvolt_circuit::multiplier::MultiplierUnit;
//! use plugvolt_circuit::timing::{TimingBudget, TimingState};
//! use plugvolt_circuit::fault::FaultModel;
//!
//! let mul = MultiplierUnit::default();
//! let budget = TimingBudget::for_frequency_mhz(3_000, 35.0, 15.0);
//! let fm = FaultModel::default();
//! let mut onset_mv = None;
//! for v in (600..=1_000).rev() {
//!     let slack = mul.slack_ps(u64::MAX, u64::MAX, &budget, f64::from(v));
//!     if fm.classify(slack) != TimingState::Safe {
//!         onset_mv = Some(v);
//!         break;
//!     }
//! }
//! assert!(onset_mv.is_some(), "undervolting eventually violates Eq. 1");
//! ```

#![warn(missing_docs)]

pub mod delay;
pub mod fault;
pub mod flipflop;
pub mod multiplier;
pub mod netlist;
pub mod path;
pub mod timing;

/// Convenient glob-import of the commonly used names.
pub mod prelude {
    pub use crate::delay::{AlphaPowerModel, ConstantDelay, DelayModel};
    pub use crate::fault::{FaultModel, FaultOutcome};
    pub use crate::flipflop::{launch_capture_check, FlipFlop, LaunchCaptureReport};
    pub use crate::multiplier::{LoopOutcome, MulExecution, MultiplierUnit};
    pub use crate::path::{CriticalPath, Stage};
    pub use crate::timing::{TimingBudget, TimingState};
}
