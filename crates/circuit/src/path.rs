//! Critical data paths: launch flip-flop plus combinational stages.
//!
//! The paper reasons about a launch flip-flop `F1` (contributing `T_src`),
//! a chain of combinational logic (contributing `T_prop`) and a capture
//! flip-flop `F2` (contributing `T_setup`, accounted in
//! [`crate::timing::TimingBudget`]). A [`CriticalPath`] is that structural
//! chain with voltage-dependent delays.

use crate::delay::{AlphaPowerModel, ConstantDelay, DelayModel, Millivolts, Picoseconds};
use serde::{Deserialize, Serialize};

/// One stage of a critical path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Stage {
    /// A voltage-sensitive logic stage.
    Logic(AlphaPowerModel),
    /// A voltage-insensitive fixed delay (wires, clock insertion).
    Fixed(ConstantDelay),
}

impl Stage {
    fn delay_ps(&self, v_mv: Millivolts) -> Picoseconds {
        match self {
            Stage::Logic(m) => m.delay_ps(v_mv),
            Stage::Fixed(c) => c.delay_ps(v_mv),
        }
    }
}

/// A launch flip-flop plus combinational stages: the `T_src + T_prop` side
/// of Eq. 1.
///
/// # Examples
///
/// ```
/// use plugvolt_circuit::delay::AlphaPowerModel;
/// use plugvolt_circuit::path::CriticalPath;
///
/// let gate = AlphaPowerModel::calibrated(25.0, 1_000.0, 320.0, 1.4);
/// let path = CriticalPath::builder(gate)
///     .logic_stages(gate, 12)
///     .fixed_ps(30.0)
///     .build();
/// // 1 clk→Q + 12 gates + wires:
/// assert!(path.delay_ps(1_000.0) > 13.0 * 25.0);
/// // Undervolting stretches it:
/// assert!(path.delay_ps(900.0) > path.delay_ps(1_000.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalPath {
    clk_to_q: AlphaPowerModel,
    stages: Vec<Stage>,
}

impl CriticalPath {
    /// Starts building a path launched by a flip-flop with the given
    /// clock-to-Q model (`T_src`).
    #[must_use]
    pub fn builder(clk_to_q: AlphaPowerModel) -> CriticalPathBuilder {
        CriticalPathBuilder {
            clk_to_q,
            stages: Vec::new(),
        }
    }

    /// `T_src` at supply `v_mv`: the launch flip-flop's clock-to-Q delay.
    #[must_use]
    pub fn t_src_ps(&self, v_mv: Millivolts) -> Picoseconds {
        self.clk_to_q.delay_ps(v_mv)
    }

    /// `T_prop` at supply `v_mv`: the combinational stages' total delay.
    #[must_use]
    pub fn t_prop_ps(&self, v_mv: Millivolts) -> Picoseconds {
        self.stages.iter().map(|s| s.delay_ps(v_mv)).sum()
    }

    /// Total path delay `T_src + T_prop` at supply `v_mv`.
    #[must_use]
    pub fn delay_ps(&self, v_mv: Millivolts) -> Picoseconds {
        self.t_src_ps(v_mv) + self.t_prop_ps(v_mv)
    }

    /// Number of combinational stages (excluding the launch flip-flop).
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Lowest supply voltage (within `[lo_mv, hi_mv]`) at which the path
    /// still meets `budget_ps`, found by bisection on the monotone delay.
    /// Returns `None` if it fails even at `hi_mv`.
    #[must_use]
    pub fn min_safe_voltage_mv(
        &self,
        budget_ps: Picoseconds,
        lo_mv: Millivolts,
        hi_mv: Millivolts,
    ) -> Option<Millivolts> {
        if self.delay_ps(hi_mv) > budget_ps {
            return None;
        }
        if self.delay_ps(lo_mv) <= budget_ps {
            return Some(lo_mv);
        }
        let (mut lo, mut hi) = (lo_mv, hi_mv);
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.delay_ps(mid) > budget_ps {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(0.5 * (lo + hi))
    }
}

/// Builder for [`CriticalPath`].
#[derive(Debug, Clone)]
pub struct CriticalPathBuilder {
    clk_to_q: AlphaPowerModel,
    stages: Vec<Stage>,
}

impl CriticalPathBuilder {
    /// Appends one voltage-sensitive logic stage.
    #[must_use]
    pub fn logic(mut self, model: AlphaPowerModel) -> Self {
        self.stages.push(Stage::Logic(model));
        self
    }

    /// Appends `count` identical logic stages.
    #[must_use]
    pub fn logic_stages(mut self, model: AlphaPowerModel, count: usize) -> Self {
        self.stages
            .extend(std::iter::repeat_n(Stage::Logic(model), count));
        self
    }

    /// Appends a fixed (voltage-insensitive) delay.
    #[must_use]
    pub fn fixed_ps(mut self, ps: Picoseconds) -> Self {
        self.stages.push(Stage::Fixed(ConstantDelay(ps)));
        self
    }

    /// Finishes the path.
    #[must_use]
    pub fn build(self) -> CriticalPath {
        CriticalPath {
            clk_to_q: self.clk_to_q,
            stages: self.stages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingBudget;

    fn gate() -> AlphaPowerModel {
        AlphaPowerModel::calibrated(25.0, 1_000.0, 320.0, 1.4)
    }

    fn path(n: usize) -> CriticalPath {
        CriticalPath::builder(gate())
            .logic_stages(gate(), n)
            .build()
    }

    #[test]
    fn delay_sums_stages() {
        let p = path(9);
        // clk→Q plus 9 stages, each 25 ps at 1 V.
        assert!((p.delay_ps(1_000.0) - 250.0).abs() < 1e-9);
        assert_eq!(p.stage_count(), 9);
    }

    #[test]
    fn fixed_stage_does_not_scale() {
        let p = CriticalPath::builder(gate()).fixed_ps(100.0).build();
        let d_hi = p.delay_ps(1_200.0);
        let d_lo = p.delay_ps(700.0);
        // Only the clk→Q part scales.
        assert!((d_lo - d_hi) < gate().delay_ps(700.0));
        assert!(d_lo > d_hi);
    }

    #[test]
    fn t_src_and_t_prop_decompose() {
        let p = path(4);
        let v = 950.0;
        assert!((p.t_src_ps(v) + p.t_prop_ps(v) - p.delay_ps(v)).abs() < 1e-9);
    }

    #[test]
    fn min_safe_voltage_is_consistent() {
        let p = path(20);
        let budget = TimingBudget::for_frequency_mhz(1_500, 35.0, 15.0);
        let v = p
            .min_safe_voltage_mv(budget.available_ps(), 400.0, 1_300.0)
            .expect("meets timing at 1.3 V");
        // Just above: safe. Just below: unsafe.
        assert!(budget.is_safe(p.delay_ps(v + 1.0)));
        assert!(!budget.is_safe(p.delay_ps(v - 1.0)));
    }

    #[test]
    fn min_safe_voltage_none_when_impossible() {
        let p = path(500); // absurdly deep path
        let budget = TimingBudget::for_frequency_mhz(4_000, 35.0, 15.0);
        assert!(p
            .min_safe_voltage_mv(budget.available_ps(), 400.0, 1_300.0)
            .is_none());
    }

    #[test]
    fn min_safe_voltage_lo_bound_when_always_safe() {
        let p = path(1);
        let budget = TimingBudget::for_frequency_mhz(100, 35.0, 15.0);
        assert_eq!(
            p.min_safe_voltage_mv(budget.available_ps(), 500.0, 1_300.0),
            Some(500.0)
        );
    }
}
