//! Eq. 1 of the paper: the synchronous timing constraint and its slack.
//!
//! A flip-flop `F1` feeding combinational logic into `F2` is **safe** iff
//!
//! ```text
//! T_src + T_prop ≤ T_clk − T_setup − T_ε          (Eq. 1)
//! ```
//!
//! `T_src`/`T_prop` stretch under undervolting (see [`crate::delay`]);
//! `T_clk = 1/f`, `T_setup` and `T_ε` depend only on frequency and the
//! physical clock network. The *slack* is the RHS minus the LHS; a negative
//! slack is the paper's **unsafe state** (Eq. 3).

use crate::delay::Picoseconds;
use serde::{Deserialize, Serialize};

/// The frequency-side (right-hand side) of Eq. 1.
///
/// # Examples
///
/// ```
/// use plugvolt_circuit::timing::TimingBudget;
///
/// let b = TimingBudget::for_frequency_mhz(1_000, 35.0, 15.0);
/// // 1 GHz ⇒ 1000 ps period; 1000 − 35 − 15 = 950 ps available.
/// assert!((b.available_ps() - 950.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingBudget {
    t_clk_ps: Picoseconds,
    t_setup_ps: Picoseconds,
    t_eps_ps: Picoseconds,
}

impl TimingBudget {
    /// Creates a budget from an explicit clock period.
    ///
    /// # Panics
    ///
    /// Panics if the period is non-positive or setup/ε are negative.
    #[must_use]
    pub fn new(t_clk_ps: Picoseconds, t_setup_ps: Picoseconds, t_eps_ps: Picoseconds) -> Self {
        assert!(t_clk_ps > 0.0, "clock period must be positive");
        assert!(
            t_setup_ps >= 0.0 && t_eps_ps >= 0.0,
            "setup/epsilon must be non-negative"
        );
        TimingBudget {
            t_clk_ps,
            t_setup_ps,
            t_eps_ps,
        }
    }

    /// Creates a budget for a core clocked at `freq_mhz`.
    ///
    /// # Panics
    ///
    /// Panics if `freq_mhz` is zero.
    #[must_use]
    pub fn for_frequency_mhz(
        freq_mhz: u32,
        t_setup_ps: Picoseconds,
        t_eps_ps: Picoseconds,
    ) -> Self {
        assert!(freq_mhz > 0, "frequency must be non-zero");
        TimingBudget::new(1e6 / f64::from(freq_mhz), t_setup_ps, t_eps_ps)
    }

    /// The clock period `T_clk`.
    #[must_use]
    pub fn t_clk_ps(&self) -> Picoseconds {
        self.t_clk_ps
    }

    /// The setup time `T_setup` of the capturing flip-flop.
    #[must_use]
    pub fn t_setup_ps(&self) -> Picoseconds {
        self.t_setup_ps
    }

    /// The worst-case clock uncertainty `T_ε`.
    #[must_use]
    pub fn t_eps_ps(&self) -> Picoseconds {
        self.t_eps_ps
    }

    /// `T_clk − T_setup − T_ε`: the time the data path may consume.
    ///
    /// Clamped at zero — a budget can never be negative, only exhausted.
    #[must_use]
    pub fn available_ps(&self) -> Picoseconds {
        (self.t_clk_ps - self.t_setup_ps - self.t_eps_ps).max(0.0)
    }

    /// Slack of a data path taking `t_src + t_prop = path_ps`.
    ///
    /// Positive ⇒ safe (Eq. 1 holds); negative ⇒ unsafe (Eq. 3).
    #[must_use]
    pub fn slack_ps(&self, path_ps: Picoseconds) -> Picoseconds {
        self.available_ps() - path_ps
    }

    /// Whether Eq. 1 holds for a path of `path_ps`.
    #[must_use]
    pub fn is_safe(&self, path_ps: Picoseconds) -> bool {
        self.slack_ps(path_ps) >= 0.0
    }
}

/// A classified timing state, the paper's safe/unsafe dichotomy plus the
/// empirically observed third region (crash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimingState {
    /// Eq. 1 holds with margin: output always correct.
    Safe,
    /// Eq. 1 violated but the core still runs: faulty outputs possible.
    Unsafe,
    /// Violation so deep the core cannot make progress (lockup/reset).
    Crash,
}

impl TimingState {
    /// Classifies a slack value given the crash margin (how far past zero
    /// slack the core survives before locking up).
    #[must_use]
    pub fn classify(slack_ps: Picoseconds, crash_margin_ps: Picoseconds) -> Self {
        if slack_ps >= 0.0 {
            TimingState::Safe
        } else if slack_ps.is_nan() || -slack_ps > crash_margin_ps {
            TimingState::Crash
        } else {
            TimingState::Unsafe
        }
    }

    /// Whether this state can produce incorrect architectural results.
    #[must_use]
    pub fn can_fault(self) -> bool {
        matches!(self, TimingState::Unsafe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_from_frequency() {
        let b = TimingBudget::for_frequency_mhz(2_000, 30.0, 10.0);
        assert!((b.t_clk_ps() - 500.0).abs() < 1e-9);
        assert!((b.available_ps() - 460.0).abs() < 1e-9);
    }

    #[test]
    fn higher_frequency_shrinks_budget() {
        let lo = TimingBudget::for_frequency_mhz(1_000, 30.0, 10.0);
        let hi = TimingBudget::for_frequency_mhz(3_000, 30.0, 10.0);
        assert!(hi.available_ps() < lo.available_ps());
    }

    #[test]
    fn available_clamps_at_zero() {
        let b = TimingBudget::new(10.0, 30.0, 10.0);
        assert_eq!(b.available_ps(), 0.0);
        assert!(!b.is_safe(1.0));
    }

    #[test]
    fn slack_sign_matches_eq1() {
        let b = TimingBudget::new(1_000.0, 35.0, 15.0);
        assert!(b.is_safe(950.0)); // exactly meets the deadline
        assert!(!b.is_safe(950.1));
        assert!(b.slack_ps(900.0) > 0.0);
        assert!(b.slack_ps(1_000.0) < 0.0);
    }

    #[test]
    fn classify_three_regions() {
        assert_eq!(TimingState::classify(5.0, 100.0), TimingState::Safe);
        assert_eq!(TimingState::classify(0.0, 100.0), TimingState::Safe);
        assert_eq!(TimingState::classify(-5.0, 100.0), TimingState::Unsafe);
        assert_eq!(TimingState::classify(-150.0, 100.0), TimingState::Crash);
        assert_eq!(TimingState::classify(f64::NAN, 100.0), TimingState::Crash);
        // Infinite path delay (supply below threshold) is a crash.
        assert_eq!(
            TimingState::classify(f64::NEG_INFINITY, 100.0),
            TimingState::Crash
        );
    }

    #[test]
    fn only_unsafe_faults() {
        assert!(!TimingState::Safe.can_fault());
        assert!(TimingState::Unsafe.can_fault());
        assert!(!TimingState::Crash.can_fault());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_period_rejected() {
        let _ = TimingBudget::new(0.0, 1.0, 1.0);
    }
}
