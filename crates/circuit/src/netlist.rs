//! Gate-level netlists with functional evaluation and static timing
//! analysis.
//!
//! The analytic models in [`crate::multiplier`] are fast enough for
//! million-iteration sweeps; this module provides the ground truth they
//! abstract: real gate networks whose logic values and arrival times can
//! be evaluated exactly. The built-in generators (ripple-carry adder,
//! array multiplier) are used in tests to validate that the analytic depth
//! scaling matches structural reality.

use crate::delay::{DelayModel, Millivolts, Picoseconds};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a net (wire) in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub u32);

/// Logic function of a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// 2-input AND.
    And,
    /// 2-input OR.
    Or,
    /// 2-input XOR.
    Xor,
    /// Inverter (second input ignored, must equal the first).
    Not,
}

impl GateKind {
    fn eval(self, a: bool, b: bool) -> bool {
        match self {
            GateKind::And => a & b,
            GateKind::Or => a | b,
            GateKind::Xor => a ^ b,
            GateKind::Not => !a,
        }
    }

    /// Relative drive weight: how many unit-gate delays this gate costs.
    fn delay_units(self) -> f64 {
        match self {
            GateKind::Not => 0.6,
            GateKind::And | GateKind::Or => 1.0,
            GateKind::Xor => 1.6, // XOR is the slow gate in adder chains
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Gate {
    kind: GateKind,
    a: NetId,
    b: NetId,
    out: NetId,
}

/// A combinational gate network in topological order.
///
/// Gates must be appended in an order where every input is either a
/// primary input or the output of an earlier gate; [`Netlist::evaluate`]
/// and [`Netlist::arrival_times`] run in one forward pass.
///
/// # Examples
///
/// ```
/// use plugvolt_circuit::netlist::{GateKind, Netlist};
///
/// let mut nl = Netlist::new(2);
/// let [a, b] = [nl.input(0), nl.input(1)];
/// let sum = nl.gate(GateKind::Xor, a, b);
/// let carry = nl.gate(GateKind::And, a, b);
/// let out = nl.evaluate(&[true, true]);
/// assert!(!out[sum.0 as usize] && out[carry.0 as usize]);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Netlist {
    num_inputs: u32,
    num_nets: u32,
    gates: Vec<Gate>,
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist: {} inputs, {} gates, {} nets",
            self.num_inputs,
            self.gates.len(),
            self.num_nets
        )
    }
}

impl Netlist {
    /// Creates a netlist with `num_inputs` primary inputs.
    #[must_use]
    pub fn new(num_inputs: u32) -> Self {
        Netlist {
            num_inputs,
            num_nets: num_inputs,
            gates: Vec::new(),
        }
    }

    /// The net driven by primary input `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn input(&self, idx: u32) -> NetId {
        assert!(idx < self.num_inputs, "input index out of range");
        NetId(idx)
    }

    /// Appends a gate and returns its output net.
    ///
    /// # Panics
    ///
    /// Panics if an input net does not exist yet (topological order
    /// violation).
    pub fn gate(&mut self, kind: GateKind, a: NetId, b: NetId) -> NetId {
        assert!(
            a.0 < self.num_nets && b.0 < self.num_nets,
            "gate input not yet driven"
        );
        let out = NetId(self.num_nets);
        self.num_nets += 1;
        self.gates.push(Gate { kind, a, b, out });
        out
    }

    /// Appends an inverter.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.gate(GateKind::Not, a, a)
    }

    /// Number of gates.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of nets (inputs + gate outputs).
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.num_nets as usize
    }

    /// Evaluates logic values for all nets given primary input values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the declared input count.
    #[must_use]
    pub fn evaluate(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.num_inputs as usize,
            "input arity mismatch"
        );
        let mut values = vec![false; self.num_nets as usize];
        values[..inputs.len()].copy_from_slice(inputs);
        for g in &self.gates {
            values[g.out.0 as usize] = g.kind.eval(values[g.a.0 as usize], values[g.b.0 as usize]);
        }
        values
    }

    /// Static timing analysis: worst-case arrival time of every net at
    /// supply `v_mv`, with primary inputs arriving at time 0 and each gate
    /// costing `unit.delay_ps(v) × kind.delay_units()`.
    #[must_use]
    pub fn arrival_times(&self, unit: &dyn DelayModel, v_mv: Millivolts) -> Vec<Picoseconds> {
        let unit_ps = unit.delay_ps(v_mv);
        let mut arrival = vec![0.0f64; self.num_nets as usize];
        for g in &self.gates {
            let inputs_ready = arrival[g.a.0 as usize].max(arrival[g.b.0 as usize]);
            arrival[g.out.0 as usize] = inputs_ready + unit_ps * g.kind.delay_units();
        }
        arrival
    }

    /// The worst arrival time across the given output nets.
    ///
    /// # Panics
    ///
    /// Panics if `outputs` is empty or contains an unknown net.
    #[must_use]
    pub fn critical_delay_ps(
        &self,
        unit: &dyn DelayModel,
        v_mv: Millivolts,
        outputs: &[NetId],
    ) -> Picoseconds {
        assert!(!outputs.is_empty(), "need at least one output");
        let arrival = self.arrival_times(unit, v_mv);
        outputs
            .iter()
            .map(|n| arrival[n.0 as usize])
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// A generated arithmetic block: the netlist plus its pin map.
#[derive(Debug, Clone)]
pub struct ArithBlock {
    /// The gate network.
    pub netlist: Netlist,
    /// Nets carrying operand A, LSB first.
    pub a: Vec<NetId>,
    /// Nets carrying operand B, LSB first.
    pub b: Vec<NetId>,
    /// Nets carrying the result, LSB first.
    pub out: Vec<NetId>,
}

impl ArithBlock {
    /// Evaluates the block on integer operands, returning the integer
    /// value on the output pins.
    ///
    /// # Panics
    ///
    /// Panics if the operands do not fit the pin widths.
    #[must_use]
    pub fn compute(&self, a: u64, b: u64) -> u64 {
        assert!(
            self.a.len() < 64 && a < (1 << self.a.len()),
            "operand A too wide"
        );
        assert!(
            self.b.len() < 64 && b < (1 << self.b.len()),
            "operand B too wide"
        );
        let mut inputs = vec![false; self.a.len() + self.b.len()];
        for (i, net) in self.a.iter().enumerate() {
            inputs[net.0 as usize] = (a >> i) & 1 == 1;
        }
        for (i, net) in self.b.iter().enumerate() {
            inputs[net.0 as usize] = (b >> i) & 1 == 1;
        }
        let values = self.netlist.evaluate(&inputs);
        self.out.iter().enumerate().fold(0u64, |acc, (i, n)| {
            acc | (u64::from(values[n.0 as usize]) << i)
        })
    }
}

/// Generates an `n`-bit ripple-carry adder (output is `n+1` bits).
///
/// # Panics
///
/// Panics if `n` is 0 or above 31.
#[must_use]
pub fn ripple_carry_adder(n: u32) -> ArithBlock {
    assert!((1..=31).contains(&n), "width out of range");
    let mut nl = Netlist::new(2 * n);
    let a: Vec<NetId> = (0..n).map(|i| nl.input(i)).collect();
    let b: Vec<NetId> = (0..n).map(|i| nl.input(n + i)).collect();
    let mut out = Vec::with_capacity(n as usize + 1);
    let mut carry: Option<NetId> = None;
    for i in 0..n as usize {
        let axb = nl.gate(GateKind::Xor, a[i], b[i]);
        let (sum, cout) = match carry {
            None => {
                let cout = nl.gate(GateKind::And, a[i], b[i]);
                (axb, cout)
            }
            Some(c) => {
                let sum = nl.gate(GateKind::Xor, axb, c);
                let t1 = nl.gate(GateKind::And, axb, c);
                let t2 = nl.gate(GateKind::And, a[i], b[i]);
                let cout = nl.gate(GateKind::Or, t1, t2);
                (sum, cout)
            }
        };
        out.push(sum);
        carry = Some(cout);
    }
    out.push(carry.expect("n >= 1"));
    ArithBlock {
        netlist: nl,
        a,
        b,
        out,
    }
}

/// Generates an `n`×`n` unsigned array multiplier (output is `2n` bits).
///
/// # Panics
///
/// Panics if `n` is 0 or above 15.
#[must_use]
pub fn array_multiplier(n: u32) -> ArithBlock {
    assert!((1..=15).contains(&n), "width out of range");
    let mut nl = Netlist::new(2 * n);
    let a: Vec<NetId> = (0..n).map(|i| nl.input(i)).collect();
    let b: Vec<NetId> = (0..n).map(|i| nl.input(n + i)).collect();

    // Row 0: partial products of b0.
    let mut row: Vec<NetId> = a
        .iter()
        .map(|&ai| nl.gate(GateKind::And, ai, b[0]))
        .collect();
    let mut out = Vec::with_capacity(2 * n as usize);
    out.push(row[0]);
    let mut acc: Vec<NetId> = row[1..].to_vec();

    for &bj in b.iter().take(n as usize).skip(1) {
        // Partial products of b_j.
        row = a.iter().map(|&ai| nl.gate(GateKind::And, ai, bj)).collect();
        // Add row into acc with a ripple of full adders.
        let mut next_acc = Vec::with_capacity(n as usize);
        let mut carry: Option<NetId> = None;
        for (i, &pp) in row.iter().enumerate() {
            let other = acc.get(i).copied();
            let (sum, cout) = match (other, carry) {
                (None, None) => (pp, None),
                (Some(x), None) | (None, Some(x)) => {
                    let s = nl.gate(GateKind::Xor, pp, x);
                    let c = nl.gate(GateKind::And, pp, x);
                    (s, Some(c))
                }
                (Some(x), Some(c)) => {
                    let axb = nl.gate(GateKind::Xor, pp, x);
                    let s = nl.gate(GateKind::Xor, axb, c);
                    let t1 = nl.gate(GateKind::And, axb, c);
                    let t2 = nl.gate(GateKind::And, pp, x);
                    let co = nl.gate(GateKind::Or, t1, t2);
                    (s, Some(co))
                }
            };
            next_acc.push(sum);
            carry = cout;
        }
        // Propagate carry into any remaining acc bits.
        for &acc_bit in acc.iter().skip(row.len()) {
            match carry {
                Some(c) => {
                    let s = nl.gate(GateKind::Xor, acc_bit, c);
                    let co = nl.gate(GateKind::And, acc_bit, c);
                    next_acc.push(s);
                    carry = Some(co);
                }
                None => next_acc.push(acc_bit),
            }
        }
        if let Some(c) = carry {
            next_acc.push(c);
        }
        out.push(next_acc[0]);
        acc = next_acc[1..].to_vec();
    }
    out.extend(acc);
    out.truncate(2 * n as usize);
    while out.len() < 2 * n as usize {
        // Pad with constant-zero nets if the structure came up short:
        // cannot happen structurally, but keep the pin map total.
        let zero = nl.gate(GateKind::Xor, a[0], a[0]);
        out.push(zero);
    }
    ArithBlock {
        netlist: nl,
        a,
        b,
        out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{AlphaPowerModel, ConstantDelay};

    #[test]
    fn half_adder_truth_table() {
        let mut nl = Netlist::new(2);
        let (a, b) = (nl.input(0), nl.input(1));
        let sum = nl.gate(GateKind::Xor, a, b);
        let carry = nl.gate(GateKind::And, a, b);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = nl.evaluate(&[va, vb]);
            assert_eq!(out[sum.0 as usize], va ^ vb);
            assert_eq!(out[carry.0 as usize], va & vb);
        }
    }

    #[test]
    fn inverter_ignores_second_pin() {
        let mut nl = Netlist::new(1);
        let a = nl.input(0);
        let na = nl.not(a);
        assert!(nl.evaluate(&[false])[na.0 as usize]);
        assert!(!nl.evaluate(&[true])[na.0 as usize]);
    }

    #[test]
    fn adder_matches_integer_addition() {
        let add = ripple_carry_adder(8);
        for (x, y) in [(0u64, 0u64), (1, 1), (255, 255), (200, 100), (37, 93)] {
            assert_eq!(add.compute(x, y), x + y, "{x}+{y}");
        }
    }

    #[test]
    fn adder_exhaustive_4bit() {
        let add = ripple_carry_adder(4);
        for x in 0..16u64 {
            for y in 0..16u64 {
                assert_eq!(add.compute(x, y), x + y);
            }
        }
    }

    #[test]
    fn multiplier_matches_integer_multiplication() {
        let mul = array_multiplier(6);
        for (x, y) in [(0u64, 0u64), (1, 63), (63, 63), (42, 17), (9, 31)] {
            assert_eq!(mul.compute(x, y), x * y, "{x}*{y}");
        }
    }

    #[test]
    fn multiplier_exhaustive_4bit() {
        let mul = array_multiplier(4);
        for x in 0..16u64 {
            for y in 0..16u64 {
                assert_eq!(mul.compute(x, y), x * y);
            }
        }
    }

    #[test]
    fn adder_critical_delay_grows_with_width() {
        let unit = ConstantDelay(10.0);
        let d4 = {
            let a = ripple_carry_adder(4);
            a.netlist.critical_delay_ps(&unit, 1_000.0, &a.out)
        };
        let d16 = {
            let a = ripple_carry_adder(16);
            a.netlist.critical_delay_ps(&unit, 1_000.0, &a.out)
        };
        assert!(d16 > 2.0 * d4, "d4={d4} d16={d16}");
    }

    #[test]
    fn multiplier_deeper_than_adder() {
        let unit = ConstantDelay(10.0);
        let add = ripple_carry_adder(8);
        let mul = array_multiplier(8);
        let da = add.netlist.critical_delay_ps(&unit, 1_000.0, &add.out);
        let dm = mul.netlist.critical_delay_ps(&unit, 1_000.0, &mul.out);
        assert!(dm > da);
    }

    #[test]
    fn undervolting_stretches_sta() {
        let unit = AlphaPowerModel::calibrated(10.0, 1_000.0, 320.0, 1.4);
        let mul = array_multiplier(8);
        let nominal = mul.netlist.critical_delay_ps(&unit, 1_000.0, &mul.out);
        let under = mul.netlist.critical_delay_ps(&unit, 800.0, &mul.out);
        assert!(under > nominal);
    }

    #[test]
    fn arrival_times_are_monotone_along_paths() {
        let mut nl = Netlist::new(2);
        let (a, b) = (nl.input(0), nl.input(1));
        let g1 = nl.gate(GateKind::And, a, b);
        let g2 = nl.gate(GateKind::Or, g1, b);
        let times = nl.arrival_times(&ConstantDelay(5.0), 1_000.0);
        assert!(times[g2.0 as usize] > times[g1.0 as usize]);
        assert_eq!(times[a.0 as usize], 0.0);
    }

    #[test]
    #[should_panic(expected = "not yet driven")]
    fn topological_violation_panics() {
        let mut nl = Netlist::new(1);
        let _ = nl.gate(GateKind::And, NetId(5), NetId(5));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn evaluate_checks_arity() {
        let nl = Netlist::new(2);
        let _ = nl.evaluate(&[true]);
    }
}
