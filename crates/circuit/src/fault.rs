//! Stochastic fault injection under timing violations.
//!
//! The analytic slack of [`crate::timing::TimingBudget`] tells us when
//! Eq. 1 is violated *on average*; on silicon the transition is a band:
//! as slack shrinks through zero the per-operation fault probability rises
//! from ≈ 0 to ≈ 1 (process variation, data-dependent paths, local IR
//! drop). We model that band with a logistic curve and sample bit flips
//! the way Plundervolt reported them — one or two flipped bits in the
//! upper significant bits of a multiplier result.

use crate::delay::Picoseconds;
use crate::timing::TimingState;
use plugvolt_des::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Outcome of executing one operation under a given timing slack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultOutcome {
    /// The operation produced its architecturally correct result.
    Correct,
    /// The operation completed but some result bits flipped.
    Faulted {
        /// XOR mask applied to the correct result.
        flip_mask: u64,
    },
    /// The violation was deep enough to lock up the core.
    Crash,
}

impl FaultOutcome {
    /// Whether the result differs from the correct value.
    #[must_use]
    pub fn is_faulted(self) -> bool {
        matches!(self, FaultOutcome::Faulted { .. })
    }
}

/// The stochastic fault model: logistic fault band plus crash margin.
///
/// # Examples
///
/// ```
/// use plugvolt_circuit::fault::FaultModel;
///
/// let fm = FaultModel::default();
/// // Ample slack: essentially never faults.
/// assert!(fm.fault_probability(100.0) < 1e-9);
/// // Deep violation: essentially always faults.
/// assert!(fm.fault_probability(-100.0) > 1.0 - 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    band_ps: f64,
    crash_margin_ps: f64,
}

impl Default for FaultModel {
    /// A band of 3 ps and a crash margin of 60 ps — calibrated so a
    /// characterization sweep shows a few-tens-of-millivolt unsafe band
    /// between first fault and crash, matching the paper's Figures 2–4.
    fn default() -> Self {
        FaultModel::new(3.0, 60.0)
    }
}

impl FaultModel {
    /// Creates a model with logistic band width `band_ps` and crash margin
    /// `crash_margin_ps` (how far past zero slack the core still runs).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive.
    #[must_use]
    pub fn new(band_ps: f64, crash_margin_ps: f64) -> Self {
        assert!(band_ps > 0.0, "band width must be positive");
        assert!(crash_margin_ps > 0.0, "crash margin must be positive");
        FaultModel {
            band_ps,
            crash_margin_ps,
        }
    }

    /// The crash margin in picoseconds.
    #[must_use]
    pub fn crash_margin_ps(&self) -> Picoseconds {
        self.crash_margin_ps
    }

    /// Per-operation fault probability at the given slack.
    ///
    /// Logistic in `−slack/band`: 0.5 at zero slack, → 0 with positive
    /// slack, → 1 with violation.
    #[must_use]
    pub fn fault_probability(&self, slack_ps: Picoseconds) -> f64 {
        if slack_ps.is_nan() {
            return 1.0;
        }
        1.0 / (1.0 + (slack_ps / self.band_ps).exp())
    }

    /// Classifies slack into the paper's safe/unsafe/crash regions.
    #[must_use]
    pub fn classify(&self, slack_ps: Picoseconds) -> TimingState {
        TimingState::classify(slack_ps, self.crash_margin_ps)
    }

    /// Samples the outcome of one operation at the given slack.
    ///
    /// `significant_bits` bounds where flips may land (see
    /// [`sample_flip_mask`]).
    pub fn sample(
        &self,
        slack_ps: Picoseconds,
        significant_bits: u32,
        rng: &mut SimRng,
    ) -> FaultOutcome {
        match self.classify(slack_ps) {
            TimingState::Crash => FaultOutcome::Crash,
            TimingState::Safe | TimingState::Unsafe => {
                if rng.chance(self.fault_probability(slack_ps)) {
                    FaultOutcome::Faulted {
                        flip_mask: sample_flip_mask(significant_bits, rng),
                    }
                } else {
                    FaultOutcome::Correct
                }
            }
        }
    }

    /// Number of faulted operations among `n` independent operations at
    /// the given slack — a binomial sample, computed without iterating
    /// `n` times so million-iteration characterization loops stay fast.
    pub fn sample_fault_count(&self, slack_ps: Picoseconds, n: u64, rng: &mut SimRng) -> u64 {
        sample_binomial(n, self.fault_probability(slack_ps), rng)
    }
}

/// Samples a Plundervolt-style flip mask: usually one, sometimes two bits
/// flipped, concentrated in the upper half of the `significant_bits`-wide
/// result window.
///
/// Always returns a non-zero mask (a "fault" that flips nothing is not a
/// fault). `significant_bits` is clamped to `[2, 64]`.
pub fn sample_flip_mask(significant_bits: u32, rng: &mut SimRng) -> u64 {
    let sig = significant_bits.clamp(2, 64);
    // Flips land in the upper half of the significant window: the longest
    // carry/reduction chains feed the high result bits.
    let lo = sig / 2;
    let span = u64::from(sig - lo);
    let bit1 = u64::from(lo) + rng.below(span);
    let mut mask = 1u64 << bit1;
    if rng.chance(0.1) {
        let bit2 = u64::from(lo) + rng.below(span);
        mask |= 1u64 << bit2;
        // If both draws landed on the same bit the mask is still one flip.
    }
    mask
}

/// Draws from Binomial(`n`, `p`) deterministically via `rng`.
///
/// Uses the exact geometric-skip method for small expected counts and a
/// clamped normal approximation for large ones, so it is O(successes)
/// rather than O(n).
pub fn sample_binomial(n: u64, p: f64, rng: &mut SimRng) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mean = n as f64 * p;
    let var = mean * (1.0 - p);
    if var > 100.0 {
        // Normal approximation, clamped to the support.
        let draw = mean + var.sqrt() * rng.gaussian();
        return draw.round().clamp(0.0, n as f64) as u64;
    }
    if p > 0.5 {
        // Count failures instead for efficiency.
        return n - sample_binomial(n, 1.0 - p, rng);
    }
    // Geometric skips: the gap between successes is Geometric(p).
    // ln_1p keeps precision for tiny p, where (1.0 - p) rounds to 1.0.
    let log1m = (-p).ln_1p(); // negative
    if log1m == 0.0 {
        // p is below f64 resolution: indistinguishable from zero.
        return 0;
    }
    let mut successes = 0u64;
    let mut index = 0u64;
    loop {
        let u = rng.next_f64().max(f64::MIN_POSITIVE);
        let skip = (u.ln() / log1m).floor() as u64;
        index = index.saturating_add(skip).saturating_add(1);
        if index > n {
            return successes;
        }
        successes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::from_seed_label(99, "fault-tests")
    }

    #[test]
    fn probability_is_monotone_in_violation() {
        let fm = FaultModel::default();
        let mut prev = 0.0;
        for slack in (-50..=50).rev() {
            let p = fm.fault_probability(f64::from(slack));
            assert!(p >= prev);
            prev = p;
        }
        assert!((fm.fault_probability(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nan_slack_always_faults() {
        let fm = FaultModel::default();
        assert_eq!(fm.fault_probability(f64::NAN), 1.0);
    }

    #[test]
    fn sample_respects_regions() {
        let fm = FaultModel::new(3.0, 60.0);
        let mut r = rng();
        assert_eq!(fm.sample(1_000.0, 64, &mut r), FaultOutcome::Correct);
        assert_eq!(fm.sample(-1_000.0, 64, &mut r), FaultOutcome::Crash);
        let out = fm.sample(-30.0, 64, &mut r);
        assert!(matches!(
            out,
            FaultOutcome::Faulted { .. } | FaultOutcome::Correct
        ));
    }

    #[test]
    fn deep_unsafe_faults_almost_surely() {
        let fm = FaultModel::new(3.0, 60.0);
        let mut r = rng();
        let faults = (0..100)
            .filter(|_| fm.sample(-55.0, 64, &mut r).is_faulted())
            .count();
        assert!(faults > 95, "faults={faults}");
    }

    #[test]
    fn flip_mask_never_zero_and_in_window() {
        let mut r = rng();
        for _ in 0..2_000 {
            let mask = sample_flip_mask(32, &mut r);
            assert_ne!(mask, 0);
            // All set bits within [16, 32).
            assert_eq!(mask & !0xFFFF_0000u64, 0, "mask={mask:#x}");
        }
    }

    #[test]
    fn flip_mask_handles_tiny_windows() {
        let mut r = rng();
        for _ in 0..100 {
            let mask = sample_flip_mask(0, &mut r); // clamped to 2
            assert_ne!(mask, 0);
            assert_eq!(mask & !0b11u64, 0);
        }
    }

    #[test]
    fn binomial_edge_cases() {
        let mut r = rng();
        assert_eq!(sample_binomial(0, 0.5, &mut r), 0);
        assert_eq!(sample_binomial(100, 0.0, &mut r), 0);
        assert_eq!(sample_binomial(100, 1.0, &mut r), 100);
        assert_eq!(sample_binomial(100, -0.5, &mut r), 0);
        assert_eq!(sample_binomial(100, 2.0, &mut r), 100);
    }

    #[test]
    fn binomial_mean_small_p() {
        let mut r = rng();
        let n = 1_000_000u64;
        let p = 5e-6;
        let total: u64 = (0..200).map(|_| sample_binomial(n, p, &mut r)).sum();
        let mean = total as f64 / 200.0;
        // Expected 5 per draw; allow generous tolerance.
        assert!((3.5..6.5).contains(&mean), "mean={mean}");
    }

    #[test]
    fn binomial_mean_large_variance() {
        let mut r = rng();
        let n = 1_000_000u64;
        let p = 0.3;
        let draw = sample_binomial(n, p, &mut r);
        let expected = 300_000.0;
        assert!((draw as f64 - expected).abs() < 5_000.0, "draw={draw}");
    }

    #[test]
    fn binomial_high_p_counts_failures() {
        let mut r = rng();
        let draw = sample_binomial(1_000, 0.99, &mut r);
        assert!(draw > 970 && draw <= 1_000, "draw={draw}");
    }

    #[test]
    fn sample_fault_count_tracks_probability() {
        let fm = FaultModel::new(3.0, 60.0);
        let mut r = rng();
        // Strong violation: essentially all operations fault.
        let c = fm.sample_fault_count(-50.0, 10_000, &mut r);
        assert!(c > 9_900, "c={c}");
        // Ample slack: none fault.
        let c = fm.sample_fault_count(200.0, 10_000, &mut r);
        assert_eq!(c, 0);
    }
}
