//! Minefield-style deflection defense \[15\] — the baseline the paper
//! argues against.
//!
//! Minefield is a compiler extension that plants fault-sensitive *canary*
//! instructions between the victim's real instructions inside the
//! enclave; after each block a check verifies the canaries and *traps*
//! (aborts the computation) if any faulted, deflecting the attack before
//! the faulty value can leave the enclave. Here the instrumentation is
//! applied to the RSA-CRT signer: every real multiplication is preceded
//! by `canaries_per_mult` full-width canary `imul`s whose expected
//! products are known.
//!
//! Two properties the paper leans on fall out measurably:
//!
//! 1. **Cost** — the protected computation executes
//!    `1 + canaries_per_mult` times the multiplications (Minefield's
//!    evaluation reports comparable slowdowns on protected enclaves),
//!    versus the polling module's ≈ 0.3 % *system-wide* overhead;
//! 2. **The stepping hole** — the trap runs *after* the faultable
//!    instruction; an SGX-Step/zero-step adversary isolates the fault
//!    and harvests the faulty value before any canary check executes
//!    (Sec. 4.1 of the paper).

use crate::crypto::rsa::RsaKey;
use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::package::PackageError;
use plugvolt_des::time::SimDuration;
use plugvolt_kernel::machine::{Machine, MachineError};
use plugvolt_kernel::sgx::SteppingCapability;
use serde::{Deserialize, Serialize};

/// Instrumentation density.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinefieldConfig {
    /// Canary `imul`s planted before each real multiplication.
    pub canaries_per_mult: u32,
}

impl Default for MinefieldConfig {
    fn default() -> Self {
        MinefieldConfig {
            canaries_per_mult: 1,
        }
    }
}

/// Outcome of one deflected signing operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeflectedSign {
    /// The signature the computation produced (possibly faulty).
    pub signature: u64,
    /// Whether a canary check detected a fault (the enclave traps and
    /// refuses to release the signature through its legitimate exit).
    pub trapped: bool,
    /// Canary faults observed.
    pub canary_faults: u64,
    /// Real multiplications executed.
    pub real_mults: u64,
    /// Canary multiplications executed (the instrumentation cost).
    pub canary_mults: u64,
}

impl DeflectedSign {
    /// What an adversary with `stepping` capability obtains from this
    /// run: the signature leaks if the enclave released it (no trap) or
    /// if the adversary can single/zero-step past the trap (Sec. 4.1).
    #[must_use]
    pub fn adversary_view(&self, stepping: SteppingCapability) -> Option<u64> {
        if !self.trapped || stepping.defeats_trap_deflection() {
            Some(self.signature)
        } else {
            None
        }
    }
}

/// Signs `msg` under Minefield instrumentation on the simulated CPU.
///
/// # Errors
///
/// Propagates machine errors (including a package crash).
pub fn sign_with_deflection(
    machine: &mut Machine,
    core: CoreId,
    key: &RsaKey,
    msg: u64,
    cfg: &MinefieldConfig,
) -> Result<DeflectedSign, MachineError> {
    let now = machine.now();
    let mut canary_faults = 0u64;
    let mut real_mults = 0u64;
    let mut canary_mults = 0u64;
    let mut failure: Option<PackageError> = None;
    let signature = {
        let cpu = machine.cpu_mut();
        let mut mul = |a: u64, b: u64| {
            // Canaries first: maximally deep operands, known product.
            for i in 0..cfg.canaries_per_mult {
                canary_mults += 1;
                let ca = u64::MAX - u64::from(i);
                let cb = u64::MAX - u64::from(i).rotate_left(17);
                match cpu.execute_imul(now, core, ca, cb) {
                    Ok(ex) => {
                        if ex.value != ca.wrapping_mul(cb) {
                            canary_faults += 1;
                        }
                    }
                    Err(e) => {
                        failure.get_or_insert(e);
                    }
                }
            }
            real_mults += 1;
            match cpu.execute_imul(now, core, a, b) {
                Ok(ex) => ex.value,
                Err(e) => {
                    failure.get_or_insert(e);
                    a.wrapping_mul(b)
                }
            }
        };
        key.sign_crt(msg, &mut mul)
    };
    if let Some(e) = failure {
        return Err(MachineError::Package(e));
    }
    // Account the instrumented computation's wall time.
    let freq = machine.cpu().core_freq(core)?;
    machine.advance(SimDuration::from_cycles(
        (real_mults + canary_mults) * 3,
        freq.mhz(),
    ));
    Ok(DeflectedSign {
        signature,
        trapped: canary_faults > 0,
        canary_faults,
        real_mults,
        canary_mults,
    })
}

/// The instrumentation's multiplication overhead factor.
#[must_use]
pub fn instrumentation_factor(cfg: &MinefieldConfig) -> f64 {
    1.0 + f64::from(cfg.canaries_per_mult)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plugvolt_cpu::freq::FreqMhz;
    use plugvolt_cpu::model::CpuModel;
    use plugvolt_des::rng::SimRng;
    use plugvolt_kernel::cpupower::CpuPower;
    use plugvolt_kernel::msr_dev::MsrDev;
    use plugvolt_msr::addr::Msr;
    use plugvolt_msr::oc_mailbox::{OcRequest, Plane};

    fn key() -> RsaKey {
        RsaKey::generate(&mut SimRng::from_seed_label(4, "minefield"))
    }

    #[test]
    fn clean_conditions_sign_correctly_without_traps() {
        let mut m = Machine::new(CpuModel::CometLake, 71);
        let k = key();
        let out =
            sign_with_deflection(&mut m, CoreId(0), &k, 1234, &MinefieldConfig::default()).unwrap();
        assert!(!out.trapped);
        assert!(k.verify(1234, out.signature));
        assert_eq!(out.canary_mults, out.real_mults);
        assert_eq!(
            out.adversary_view(SteppingCapability::None),
            Some(out.signature)
        );
    }

    #[test]
    fn undervolted_conditions_trap_and_withhold_from_weak_adversaries() {
        let mut m = Machine::new(CpuModel::CometLake, 71);
        let k = key();
        // Park the machine deep in the unsafe band at f_max.
        let mut cpupower = CpuPower::new(&m);
        cpupower.frequency_set_all(&mut m, FreqMhz(4_900)).unwrap();
        let dev = MsrDev::open(&m, CoreId(0)).unwrap();
        let req = OcRequest::write_offset(-175, Plane::Core).encode();
        dev.write(&mut m, Msr::OC_MAILBOX, req).unwrap();
        m.advance(SimDuration::from_millis(2));
        // Collect runs until one traps.
        let mut trapped_run = None;
        for i in 0..200 {
            let out =
                sign_with_deflection(&mut m, CoreId(0), &k, 1000 + i, &MinefieldConfig::default())
                    .unwrap();
            if out.trapped {
                trapped_run = Some(out);
                break;
            }
        }
        let out = trapped_run.expect("canaries must eventually catch a fault epoch");
        assert!(out.canary_faults > 0);
        // No stepping: the trap deflects the attack.
        assert_eq!(out.adversary_view(SteppingCapability::None), None);
        // Stepping: the faulty value is harvested before the trap.
        assert_eq!(
            out.adversary_view(SteppingCapability::SingleStep),
            Some(out.signature)
        );
        assert_eq!(
            out.adversary_view(SteppingCapability::ZeroStep),
            Some(out.signature)
        );
    }

    #[test]
    fn instrumentation_cost_scales_with_density() {
        assert_eq!(instrumentation_factor(&MinefieldConfig::default()), 2.0);
        assert_eq!(
            instrumentation_factor(&MinefieldConfig {
                canaries_per_mult: 3
            }),
            4.0
        );
        // Measured: a density-3 run executes 3 canaries per real mult.
        let mut m = Machine::new(CpuModel::CometLake, 71);
        let k = key();
        let out = sign_with_deflection(
            &mut m,
            CoreId(0),
            &k,
            7,
            &MinefieldConfig {
                canaries_per_mult: 3,
            },
        )
        .unwrap();
        assert_eq!(out.canary_mults, 3 * out.real_mults);
    }
}
