//! Cryptographic victims the attacks target.

pub mod aes;
pub mod rsa;
