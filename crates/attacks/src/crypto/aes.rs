//! AES-128 victim and a Giraud-style differential fault analysis.
//!
//! Plundervolt's second exploit class targets AES. We implement AES-128
//! from scratch, a fault-injection hook that flips one state **bit**
//! right before the final round's `SubBytes` (the classic Giraud fault
//! position — exactly what a marginal timing violation in the round
//! datapath produces), and the DFA that recovers the last round key from
//! correct/faulty ciphertext pairs, then inverts the key schedule back
//! to the master key.

use plugvolt_des::rng::SimRng;
use serde::{Deserialize, Serialize};

/// The AES S-box.
pub const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

fn inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &s) in SBOX.iter().enumerate() {
        inv[s as usize] = i as u8;
    }
    inv
}

fn xtime(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1) * 0x1b)
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    // Column-major state: byte (row r, col c) at index 4c + r.
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = &mut state[4 * c..4 * c + 4];
        let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
        let all = a0 ^ a1 ^ a2 ^ a3;
        col[0] = a0 ^ all ^ xtime(a0 ^ a1);
        col[1] = a1 ^ all ^ xtime(a1 ^ a2);
        col[2] = a2 ^ all ^ xtime(a2 ^ a3);
        col[3] = a3 ^ all ^ xtime(a3 ^ a0);
    }
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (b, k) in state.iter_mut().zip(rk) {
        *b ^= k;
    }
}

/// Expands a 128-bit key into the 11 round keys.
#[must_use]
pub fn expand_key(key: &[u8; 16]) -> [[u8; 16]; 11] {
    const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];
    let mut rks = [[0u8; 16]; 11];
    rks[0] = *key;
    for round in 1..11 {
        let prev = rks[round - 1];
        let mut word = [prev[12], prev[13], prev[14], prev[15]];
        word.rotate_left(1);
        for b in &mut word {
            *b = SBOX[*b as usize];
        }
        word[0] ^= RCON[round - 1];
        let rk = &mut rks[round];
        for i in 0..4 {
            rk[i] = prev[i] ^ word[i];
        }
        for i in 4..16 {
            rk[i] = prev[i] ^ rk[i - 4];
        }
    }
    rks
}

/// Inverts the key schedule: recovers the master key from the **last**
/// round key — the final step of the DFA.
#[must_use]
pub fn invert_key_schedule(last_round_key: &[u8; 16]) -> [u8; 16] {
    const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];
    let mut rk = *last_round_key;
    for round in (1..11).rev() {
        let mut prev = [0u8; 16];
        // Words 1..3 of the previous key: w_prev[i] = w[i] ^ w[i−1].
        for i in (4..16).rev() {
            prev[i] = rk[i] ^ rk[i - 4];
        }
        // Word 0: w_prev[0] = w[0] ^ SubRot(w_prev[3]) ^ rcon.
        let mut word = [prev[12], prev[13], prev[14], prev[15]];
        word.rotate_left(1);
        for b in &mut word {
            *b = SBOX[*b as usize];
        }
        word[0] ^= RCON[round - 1];
        for i in 0..4 {
            prev[i] = rk[i] ^ word[i];
        }
        rk = prev;
    }
    rk
}

/// A fault to inject during encryption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundFault {
    /// State byte index (0–15) to corrupt.
    pub byte: u8,
    /// XOR mask applied to that byte (single bit for the Giraud model).
    pub mask: u8,
}

/// AES-128 with an optional fault injected on the state entering the
/// final round's `SubBytes`.
#[must_use]
pub fn encrypt_with_fault(
    key: &[u8; 16],
    plaintext: &[u8; 16],
    fault: Option<RoundFault>,
) -> [u8; 16] {
    let rks = expand_key(key);
    let mut state = *plaintext;
    add_round_key(&mut state, &rks[0]);
    for rk in rks.iter().take(10).skip(1) {
        sub_bytes(&mut state);
        shift_rows(&mut state);
        mix_columns(&mut state);
        add_round_key(&mut state, rk);
    }
    if let Some(f) = fault {
        state[usize::from(f.byte) & 15] ^= f.mask;
    }
    sub_bytes(&mut state);
    shift_rows(&mut state);
    add_round_key(&mut state, &rks[10]);
    state
}

/// Plain AES-128 encryption.
#[must_use]
pub fn encrypt(key: &[u8; 16], plaintext: &[u8; 16]) -> [u8; 16] {
    encrypt_with_fault(key, plaintext, None)
}

/// Where a state byte lands in the ciphertext after the final
/// `ShiftRows` (column-major indexing).
#[must_use]
pub fn shift_rows_dest(byte: u8) -> u8 {
    let (r, c) = (byte % 4, byte / 4);
    let new_c = (u32::from(c) + 4 - u32::from(r)) % 4;
    (new_c as u8) * 4 + r
}

/// Giraud DFA: narrows the last-round-key byte hypotheses for one
/// ciphertext position from a correct/faulty pair.
///
/// For a single-bit fault `e` on the state byte feeding the final
/// `SubBytes`, a key guess `k` is consistent iff
/// `S⁻¹(c ⊕ k) ⊕ S⁻¹(c' ⊕ k)` has Hamming weight 1.
#[must_use]
pub fn giraud_candidates(correct_byte: u8, faulty_byte: u8) -> Vec<u8> {
    let inv = inv_sbox();
    (0u16..256)
        .filter_map(|k| {
            let k = k as u8;
            let x = inv[(correct_byte ^ k) as usize];
            let y = inv[(faulty_byte ^ k) as usize];
            ((x ^ y).count_ones() == 1).then_some(k)
        })
        .collect()
}

/// Full DFA driver state: accumulates pairs until each of the 16 last
/// round key bytes is uniquely determined.
#[derive(Debug, Clone)]
pub struct GiraudAttack {
    /// Remaining candidates per ciphertext byte position.
    candidates: [Vec<u8>; 16],
}

impl Default for GiraudAttack {
    fn default() -> Self {
        Self::new()
    }
}

impl GiraudAttack {
    /// Starts with all 256 candidates per byte.
    #[must_use]
    pub fn new() -> Self {
        GiraudAttack {
            candidates: std::array::from_fn(|_| (0u16..256).map(|k| k as u8).collect()),
        }
    }

    /// Feeds one correct/faulty ciphertext pair. Positions where the
    /// ciphertexts agree carry no information and are skipped.
    pub fn observe(&mut self, correct: &[u8; 16], faulty: &[u8; 16]) {
        for pos in 0..16 {
            if correct[pos] == faulty[pos] {
                continue;
            }
            let narrowed = giraud_candidates(correct[pos], faulty[pos]);
            self.candidates[pos].retain(|k| narrowed.contains(k));
        }
    }

    /// The unique last round key, once every byte is pinned down.
    #[must_use]
    pub fn last_round_key(&self) -> Option<[u8; 16]> {
        let mut rk = [0u8; 16];
        for (pos, c) in self.candidates.iter().enumerate() {
            if c.len() != 1 {
                return None;
            }
            rk[pos] = c[0];
        }
        Some(rk)
    }

    /// The recovered master key, if complete.
    #[must_use]
    pub fn master_key(&self) -> Option<[u8; 16]> {
        self.last_round_key().map(|rk| invert_key_schedule(&rk))
    }

    /// Remaining hypothesis-space size (product of per-byte candidate
    /// counts, saturating), for progress reporting.
    #[must_use]
    pub fn hypothesis_space(&self) -> u128 {
        self.candidates
            .iter()
            .fold(1u128, |acc, c| acc.saturating_mul(c.len() as u128))
    }
}

/// Samples a Giraud-position fault (uniform byte, uniform single bit).
#[must_use]
pub fn sample_round_fault(rng: &mut SimRng) -> RoundFault {
    RoundFault {
        byte: rng.below(16) as u8,
        mask: 1u8 << rng.below(8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS-197 Appendix B vector.
    const KEY: [u8; 16] = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];
    const PT: [u8; 16] = [
        0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07,
        0x34,
    ];
    const CT: [u8; 16] = [
        0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b,
        0x32,
    ];

    #[test]
    fn fips197_vector() {
        assert_eq!(encrypt(&KEY, &PT), CT);
    }

    #[test]
    fn key_expansion_matches_fips197() {
        let rks = expand_key(&KEY);
        // FIPS-197 A.1: w4..w7 of the expanded key.
        assert_eq!(&rks[1][0..4], &[0xa0, 0xfa, 0xfe, 0x17]);
        // Last round key w40..w43 starts with d0 14 f9 a8.
        assert_eq!(&rks[10][0..4], &[0xd0, 0x14, 0xf9, 0xa8]);
    }

    #[test]
    fn key_schedule_inversion_round_trips() {
        let rks = expand_key(&KEY);
        assert_eq!(invert_key_schedule(&rks[10]), KEY);
    }

    #[test]
    fn fault_changes_exactly_one_ciphertext_byte() {
        let fault = RoundFault {
            byte: 5,
            mask: 0x10,
        };
        let faulty = encrypt_with_fault(&KEY, &PT, Some(fault));
        let diff: Vec<usize> = (0..16).filter(|&i| faulty[i] != CT[i]).collect();
        assert_eq!(diff.len(), 1);
        assert_eq!(diff[0], usize::from(shift_rows_dest(5)));
    }

    #[test]
    fn shift_rows_dest_is_a_permutation() {
        let mut seen = [false; 16];
        for b in 0..16 {
            seen[usize::from(shift_rows_dest(b))] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Row 0 bytes do not move.
        assert_eq!(shift_rows_dest(0), 0);
        assert_eq!(shift_rows_dest(4), 4);
    }

    #[test]
    fn giraud_candidates_contain_true_key() {
        let rks = expand_key(&KEY);
        let fault = RoundFault {
            byte: 3,
            mask: 0x02,
        };
        let faulty = encrypt_with_fault(&KEY, &PT, Some(fault));
        let pos = usize::from(shift_rows_dest(3));
        let cands = giraud_candidates(CT[pos], faulty[pos]);
        assert!(cands.contains(&rks[10][pos]));
        assert!(cands.len() < 256);
    }

    #[test]
    fn full_dfa_recovers_master_key() {
        let mut rng = SimRng::from_seed_label(9, "aes-dfa");
        let mut attack = GiraudAttack::new();
        let mut pairs = 0;
        while attack.master_key().is_none() {
            let mut pt = [0u8; 16];
            for b in &mut pt {
                *b = rng.next_u64() as u8;
            }
            let correct = encrypt(&KEY, &pt);
            let fault = sample_round_fault(&mut rng);
            let faulty = encrypt_with_fault(&KEY, &pt, Some(fault));
            attack.observe(&correct, &faulty);
            pairs += 1;
            assert!(pairs < 2_000, "DFA failed to converge");
        }
        assert_eq!(attack.master_key(), Some(KEY));
        assert_eq!(attack.hypothesis_space(), 1);
        // Classic Giraud needs on the order of tens of pairs.
        assert!(pairs < 600, "needed {pairs} pairs");
    }

    #[test]
    fn observe_ignores_identical_ciphertexts() {
        let mut attack = GiraudAttack::new();
        attack.observe(&CT, &CT);
        // 256^16 = 2^128 saturates the u128 reporting type.
        assert_eq!(attack.hypothesis_space(), u128::MAX);
    }
}
