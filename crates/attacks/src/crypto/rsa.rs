//! RSA-CRT victim and the Bellcore fault attack.
//!
//! Plundervolt's flagship exploit: fault a single multiplication inside
//! one half of an RSA-CRT signature and the faulty signature `s'`
//! factors the modulus via `gcd(s'^e − m, n)`. We implement a compact
//! RSA with 32-bit primes (64-bit modulus) whose modular multiplications
//! are **routed through a caller-supplied 64×64 multiplier** — in the
//! attack campaigns that multiplier is the simulated CPU's faultable
//! `imul`, so key extraction succeeds or fails according to the machine's
//! physical state.

use plugvolt_des::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A 64-bit-modulus RSA key with CRT parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RsaKey {
    /// First prime factor.
    pub p: u32,
    /// Second prime factor.
    pub q: u32,
    /// Modulus `p·q`.
    pub n: u64,
    /// Public exponent (65537).
    pub e: u64,
    /// Private exponent `e⁻¹ mod λ(n)`.
    pub d: u64,
    /// `d mod (p−1)`.
    pub dp: u32,
    /// `d mod (q−1)`.
    pub dq: u32,
    /// `q⁻¹ mod p`.
    pub qinv: u32,
}

/// A multiplier: takes two operands, returns the (possibly faulted) low
/// 64 bits of their product. The honest implementation is
/// `|a, b| a.wrapping_mul(b)`.
pub trait Multiplier {
    /// Multiplies `a · b` (mod 2⁶⁴).
    fn mul(&mut self, a: u64, b: u64) -> u64;
}

impl<F: FnMut(u64, u64) -> u64> Multiplier for F {
    fn mul(&mut self, a: u64, b: u64) -> u64 {
        self(a, b)
    }
}

/// Deterministic Miller–Rabin, exact for all `u32` (bases 2, 7, 61).
#[must_use]
pub fn is_prime_u32(x: u32) -> bool {
    if x < 2 {
        return false;
    }
    for small in [2u32, 3, 5, 7, 11, 13] {
        if x == small {
            return true;
        }
        if x.is_multiple_of(small) {
            return false;
        }
    }
    let n = u64::from(x);
    let mut d = n - 1;
    let mut r = 0;
    while d % 2 == 0 {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 7, 61] {
        if a % n == 0 {
            continue;
        }
        let mut y = modpow_exact(a, d, n);
        if y == 1 || y == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            y = mulmod_exact(y, y, n);
            if y == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn mulmod_exact(a: u64, b: u64, m: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(m)) as u64
}

/// Exact (fault-free) modular exponentiation.
#[must_use]
pub fn modpow_exact(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod_exact(acc, base, m);
        }
        base = mulmod_exact(base, base, m);
        exp >>= 1;
    }
    acc
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Extended GCD modular inverse (`a⁻¹ mod m`), `None` if not coprime.
#[must_use]
pub fn modinv(a: u64, m: u64) -> Option<u64> {
    let (mut old_r, mut r) = (i128::from(a), i128::from(m));
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let qt = old_r / r;
        (old_r, r) = (r, old_r - qt * r);
        (old_s, s) = (s, old_s - qt * s);
    }
    if old_r != 1 {
        return None;
    }
    let mi = i128::from(m);
    Some(((old_s % mi + mi) % mi) as u64)
}

impl RsaKey {
    /// Generates a key from two random 31-bit primes.
    ///
    /// # Panics
    ///
    /// Panics only if prime search exhausts its (astronomically
    /// sufficient) iteration budget.
    #[must_use]
    pub fn generate(rng: &mut SimRng) -> Self {
        let p = random_prime(rng);
        let mut q = random_prime(rng);
        while q == p {
            q = random_prime(rng);
        }
        Self::from_primes(p, q)
    }

    /// Builds the key from explicit primes.
    ///
    /// # Panics
    ///
    /// Panics if `p`/`q` are not distinct primes or 65537 is not
    /// invertible mod λ(n).
    #[must_use]
    pub fn from_primes(p: u32, q: u32) -> Self {
        assert!(is_prime_u32(p) && is_prime_u32(q), "factors must be prime");
        assert_ne!(p, q, "factors must be distinct");
        let e = 65_537u64;
        let phi = u64::from(p - 1) * u64::from(q - 1);
        let d = modinv(e, phi).expect("e coprime to phi");
        RsaKey {
            p,
            q,
            n: u64::from(p) * u64::from(q),
            e,
            d,
            dp: (d % u64::from(p - 1)) as u32,
            dq: (d % u64::from(q - 1)) as u32,
            qinv: modinv(u64::from(q), u64::from(p)).expect("q invertible mod p") as u32,
        }
    }

    /// Signs `m` (reduced mod n) with the CRT, routing every
    /// multiplication through `mul` — the faultable path.
    pub fn sign_crt(&self, m: u64, mul: &mut dyn Multiplier) -> u64 {
        let m = m % self.n;
        let p = u64::from(self.p);
        let q = u64::from(self.q);
        let sp = modpow_via(m % p, u64::from(self.dp), p, mul);
        let sq = modpow_via(m % q, u64::from(self.dq), q, mul);
        // Garner recombination: s = sq + q·((sp − sq)·qinv mod p).
        let h = {
            let diff = (sp + p - sq % p) % p;
            mul.mul(diff, u64::from(self.qinv)) % p
        };
        sq + mul.mul(q, h)
    }

    /// Reference (fault-free) signature.
    #[must_use]
    pub fn sign_exact(&self, m: u64) -> u64 {
        let mut honest = |a: u64, b: u64| a.wrapping_mul(b);
        self.sign_crt(m, &mut honest)
    }

    /// Verifies a signature.
    #[must_use]
    pub fn verify(&self, m: u64, s: u64) -> bool {
        s < self.n && modpow_exact(s, self.e, self.n) == m % self.n
    }
}

/// Modular exponentiation where each multiplication goes through `mul`.
/// Operands stay below 2³², so the 64-bit product is exact when `mul`
/// is honest — and a flipped product bit corrupts the result the way a
/// DVFS-faulted `imul` does.
fn modpow_via(mut base: u64, mut exp: u64, m: u64, mul: &mut dyn Multiplier) -> u64 {
    let mut acc = 1u64 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul.mul(acc, base) % m;
        }
        base = mul.mul(base, base) % m;
        exp >>= 1;
    }
    acc
}

fn random_prime(rng: &mut SimRng) -> u32 {
    for _ in 0..100_000 {
        let candidate = (rng.next_u64() as u32) | 0x8000_0001; // 32-bit, odd
        if is_prime_u32(candidate) {
            return candidate;
        }
    }
    // Statistically unreachable (prime density ~1/22 at 32 bits); a
    // budget this size failing means the RNG itself is broken.
    // plugvolt-lint: allow(no-unwrap-in-lib)
    panic!("prime search budget exhausted");
}

/// The Bellcore attack: given the message and a *faulty* CRT signature,
/// recover a prime factor of `n` as `gcd(s'^e − m, n)`.
///
/// Returns the factor if the fault hit exactly one CRT half.
#[must_use]
pub fn bellcore_factor(key_public_n: u64, e: u64, m: u64, faulty_sig: u64) -> Option<u64> {
    let n = key_public_n;
    let se = modpow_exact(faulty_sig % n, e, n);
    let m = m % n;
    // (se − m) mod n in u128: n can exceed 2^63, so u64 addition of
    // `se + n` would overflow.
    let diff = ((u128::from(se) + u128::from(n) - u128::from(m)) % u128::from(n)) as u64;
    if diff == 0 {
        return None;
    }
    let g = gcd(diff, n);
    (g > 1 && g < n).then_some(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::from_seed_label(1, "rsa-tests")
    }

    #[test]
    fn primality_spot_checks() {
        assert!(is_prime_u32(2));
        assert!(is_prime_u32(61));
        assert!(is_prime_u32(2_147_483_647)); // 2^31 − 1
        assert!(!is_prime_u32(0));
        assert!(!is_prime_u32(1));
        assert!(!is_prime_u32(2_147_483_649)); // 3 × 715827883
        assert!(!is_prime_u32(561)); // Carmichael
        assert!(!is_prime_u32(u32::MAX)); // 3·5·17·257·65537
    }

    #[test]
    fn modinv_inverts() {
        assert_eq!(modinv(3, 11), Some(4));
        assert_eq!(modinv(10, 17).map(|x| 10 * x % 17), Some(1));
        assert_eq!(modinv(6, 9), None);
    }

    #[test]
    fn keygen_produces_working_keys() {
        let mut r = rng();
        for _ in 0..5 {
            let key = RsaKey::generate(&mut r);
            let m = r.next_u64() % key.n;
            let s = key.sign_exact(m);
            assert!(key.verify(m, s), "m={m} n={}", key.n);
            // Textbook check too: s == m^d mod n.
            assert_eq!(s, modpow_exact(m, key.d, key.n));
        }
    }

    #[test]
    fn verify_rejects_wrong_signature() {
        let mut r = rng();
        let key = RsaKey::generate(&mut r);
        let m = 0x1234_5678;
        let s = key.sign_exact(m);
        assert!(!key.verify(m, s ^ 1));
        assert!(!key.verify(m + 1, s));
    }

    #[test]
    fn bellcore_recovers_factor_from_single_half_fault() {
        let mut r = rng();
        let key = RsaKey::generate(&mut r);
        let m = 0xDEAD_BEEF % key.n;
        // Fault exactly one multiplication inside the q-half exponentiation.
        let mut count = 0u32;
        let fault_at = 7;
        let mut faulty_mul = |a: u64, b: u64| {
            count += 1;
            let correct = a.wrapping_mul(b);
            if count == fault_at {
                correct ^ (1 << 20)
            } else {
                correct
            }
        };
        let s_faulty = key.sign_crt(m, &mut faulty_mul);
        assert!(!key.verify(m, s_faulty), "fault must corrupt the signature");
        let factor = bellcore_factor(key.n, key.e, m, s_faulty).expect("factors");
        assert!(factor == u64::from(key.p) || factor == u64::from(key.q));
        assert_eq!(key.n % factor, 0);
    }

    #[test]
    fn bellcore_fails_on_correct_signature() {
        let mut r = rng();
        let key = RsaKey::generate(&mut r);
        let m = 42;
        let s = key.sign_exact(m);
        assert_eq!(bellcore_factor(key.n, key.e, m, s), None);
    }

    #[test]
    fn crt_multiplication_operands_fit_32_bits() {
        // The fault model assumes 32×32→64 products; check the signing
        // path never feeds the multiplier wider operands (except the
        // final recombination whose factors are < p, q, or diff < p).
        let mut r = rng();
        let key = RsaKey::generate(&mut r);
        let mut max_operand = 0u64;
        let mut watch = |a: u64, b: u64| {
            max_operand = max_operand.max(a).max(b);
            a.wrapping_mul(b)
        };
        let _ = key.sign_crt(0xABCDEF, &mut watch);
        assert!(max_operand < 1 << 32, "operand {max_operand:#x}");
    }

    #[test]
    fn from_primes_validates() {
        let key = RsaKey::from_primes(0xC000_0007, 0x8000_000B);
        assert!(key.verify(12345, key.sign_exact(12345)));
    }

    #[test]
    #[should_panic(expected = "must be prime")]
    fn composite_factor_rejected() {
        let _ = RsaKey::from_primes(0xC000_0007, 1_000_000);
    }
}
