//! VoltJockey-style cross-core attack \[21\].
//!
//! VoltJockey's signature move: the adversary runs on a *sibling core*
//! and exploits the fact that the voltage plane is shared across the
//! package while frequencies are per-core. The adversary briefly pulses
//! the shared rail with a deep undervolt from its own core, timed
//! against the victim core's computation, then restores — keeping the
//! average system state innocuous while the victim accumulates faults.

use crate::campaign::{is_crash, Adversary, AttackReport};
use crate::crypto::rsa::{bellcore_factor, RsaKey};
use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::freq::FreqMhz;
use plugvolt_des::rng::SimRng;
use plugvolt_des::time::SimDuration;
use plugvolt_kernel::machine::{Machine, MachineError};
use serde::{Deserialize, Serialize};

/// Campaign parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VoltJockeyConfig {
    /// Core the adversary controls (issues the pulses).
    pub adversary_core: CoreId,
    /// Core the victim computes on.
    pub victim_core: CoreId,
    /// Victim core frequency (the adversary pins it high).
    pub victim_freq: FreqMhz,
    /// First pulse depth tried (mV, negative). Real campaigns walk the
    /// depth until the victim faults *sometimes* — a 100 % fault rate
    /// corrupts both CRT halves and defeats the Bellcore gcd.
    pub pulse_start_mv: i32,
    /// Deepest pulse tried.
    pub pulse_floor_mv: i32,
    /// Depth step between rounds.
    pub pulse_step_mv: i32,
    /// How long each pulse holds before restoring.
    pub pulse_hold: SimDuration,
    /// Victim signatures per pulse depth.
    pub victims_per_round: u32,
}

impl Default for VoltJockeyConfig {
    fn default() -> Self {
        VoltJockeyConfig {
            adversary_core: CoreId(1),
            victim_core: CoreId(0),
            victim_freq: FreqMhz(4_000),
            pulse_start_mv: -200,
            pulse_floor_mv: -280,
            pulse_step_mv: 2,
            pulse_hold: SimDuration::from_millis(3),
            victims_per_round: 20,
        }
    }
}

/// Runs the cross-core pulsed campaign against an RSA-CRT victim.
///
/// # Errors
///
/// Propagates non-crash machine errors.
pub fn run_voltjockey_attack(
    machine: &mut Machine,
    cfg: &VoltJockeyConfig,
    seed: u64,
) -> Result<AttackReport, MachineError> {
    let mut report = AttackReport::new("voltjockey-cross-core");
    let mut rng = SimRng::from_seed_label(seed, "voltjockey");
    let key = RsaKey::generate(&mut rng);
    // The adversary drives MSRs from its own core; frequencies are
    // per-core so the victim's is pinned independently.
    let mut adv = Adversary::new(machine, cfg.adversary_core)?;
    {
        let mut victim_freq_setter = Adversary::new(machine, cfg.victim_core)?;
        victim_freq_setter.pin_frequency(machine, cfg.victim_freq)?;
    }
    machine.advance(SimDuration::from_millis(1));

    let mut depth = cfg.pulse_start_mv;
    'rounds: while depth >= cfg.pulse_floor_mv {
        report.attempts += 1;
        // Pulse: undervolt from the sibling core, walking deeper.
        adv.undervolt_and_wait(machine, depth)?;
        machine.advance(cfg.pulse_hold);
        // Victim computes during the pulse window.
        for _ in 0..cfg.victims_per_round {
            let msg = rng.next_u64() % key.n;
            let now = machine.now();
            let sig = {
                let cpu = machine.cpu_mut();
                let mut failure = None;
                let mut mul = |a: u64, b: u64| match cpu.execute_imul(now, cfg.victim_core, a, b) {
                    Ok(ex) => ex.value,
                    Err(e) => {
                        failure.get_or_insert(e);
                        a.wrapping_mul(b)
                    }
                };
                let s = key.sign_crt(msg, &mut mul);
                match failure {
                    Some(e) => Err(e),
                    None => Ok(s),
                }
            };
            match sig {
                Ok(sig) => {
                    machine.advance(SimDuration::from_micros(20));
                    if !key.verify(msg, sig) {
                        report.faulty_events += 1;
                        if let Some(factor) = bellcore_factor(key.n, key.e, msg, sig) {
                            report.success = true;
                            report.extracted =
                                Some(format!("prime factor {factor:#x} via sibling core"));
                            break 'rounds;
                        }
                    }
                }
                Err(e) if is_crash(&MachineError::Package(e)) => {
                    adv.recover_from_crash(machine, cfg.victim_freq, &mut report)?;
                    // Re-pin the victim core after reset.
                    let mut v = Adversary::new(machine, cfg.victim_core)?;
                    v.pin_frequency(machine, cfg.victim_freq)?;
                    continue 'rounds;
                }
                Err(e) => return Err(MachineError::Package(e)),
            }
        }
        // Restore between pulses: the time-averaged state looks benign.
        adv.restore(machine)?;
        depth -= cfg.pulse_step_mv;
    }
    adv.restore(machine)?;
    report.wall = adv.elapsed(machine);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plugvolt_cpu::model::CpuModel;

    #[test]
    fn cross_core_pulses_extract_the_key() {
        let mut m = Machine::new(CpuModel::CometLake, 55);
        let report = run_voltjockey_attack(&mut m, &VoltJockeyConfig::default(), 3).unwrap();
        assert!(report.success, "report: {report:?}");
        assert!(report.extracted.as_deref().unwrap().contains("sibling"));
    }

    #[test]
    fn shallow_pulses_are_harmless() {
        let mut m = Machine::new(CpuModel::CometLake, 55);
        let cfg = VoltJockeyConfig {
            pulse_start_mv: -40,
            pulse_floor_mv: -60,
            pulse_step_mv: 5,
            ..VoltJockeyConfig::default()
        };
        let report = run_voltjockey_attack(&mut m, &cfg, 3).unwrap();
        assert!(!report.success);
        assert_eq!(report.faulty_events, 0);
    }

    #[test]
    fn adversary_and_victim_frequencies_are_independent() {
        let mut m = Machine::new(CpuModel::CometLake, 55);
        let cfg = VoltJockeyConfig::default();
        let _ = run_voltjockey_attack(&mut m, &cfg, 3).unwrap();
        // The adversary core still runs at base frequency.
        assert_eq!(
            m.cpu().core_freq(cfg.adversary_core).unwrap(),
            m.cpu().spec().base_freq
        );
    }
}
