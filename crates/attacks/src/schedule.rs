//! Randomized attack-campaign schedules for the differential soak
//! fuzzer (`plugvolt-cli soak`).
//!
//! A [`CampaignSchedule`] is a time-sorted list of adversary actions —
//! OC-mailbox offset writes per plane, `cpupower` frequency moves, and
//! victim computation bursts — drawn from a labelled [`SimRng`] stream
//! so the same seed always yields the same campaign. Each published
//! attack family shapes the distribution differently (Plundervolt
//! ramps, VoltJockey pulses, CLKSCREW frequency escalation, …), which
//! is what lets the soak engine explore adversarially-timed parameter
//! edges the fixed experiment scenarios never hit.
//!
//! The mutation hooks ([`CampaignSchedule::without_event`],
//! [`CampaignSchedule::with_halved_ramps`],
//! [`CampaignSchedule::with_widened_intervals`]) are the shrink moves
//! the soak engine's delta-debugger composes into minimal reproducers.

use plugvolt_cpu::exec::InstrClass;
use plugvolt_cpu::model::CpuSpec;
use plugvolt_des::rng::SimRng;
use plugvolt_msr::oc_mailbox::Plane;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The attack families the soak fuzzer draws campaigns from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackFamily {
    /// Plundervolt-style stepped core-plane undervolt ramp.
    Plundervolt,
    /// V0LTpwn-style shallow ramp against an FMA/SIMD victim.
    V0ltpwn,
    /// VoltJockey-style short deep voltage pulses.
    VoltJockey,
    /// CLKSCREW-style frequency escalation against a standing offset.
    Clkscrew,
    /// Minefield-style dual-plane campaign (core + cache rails).
    Minefield,
}

impl AttackFamily {
    /// Every family, in schedule-generation order.
    pub const ALL: [AttackFamily; 5] = [
        AttackFamily::Plundervolt,
        AttackFamily::V0ltpwn,
        AttackFamily::VoltJockey,
        AttackFamily::Clkscrew,
        AttackFamily::Minefield,
    ];

    /// Stable lowercase label (corpus filenames, reports).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AttackFamily::Plundervolt => "plundervolt",
            AttackFamily::V0ltpwn => "v0ltpwn",
            AttackFamily::VoltJockey => "voltjockey",
            AttackFamily::Clkscrew => "clkscrew",
            AttackFamily::Minefield => "minefield",
        }
    }
}

impl fmt::Display for AttackFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Voltage plane a schedule event targets (serializable subset of
/// [`Plane`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlaneSel {
    /// Plane 0: the core rail.
    Core,
    /// Plane 2: the cache/ring rail.
    Cache,
}

impl PlaneSel {
    /// The mailbox plane this selects.
    #[must_use]
    pub fn plane(self) -> Plane {
        match self {
            PlaneSel::Core => Plane::Core,
            PlaneSel::Cache => Plane::Cache,
        }
    }
}

/// Victim workload class a schedule burst runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VictimClass {
    /// Multiplier-bound loop (the paper's fault-model workhorse).
    Imul,
    /// AES rounds (Plundervolt's DFA victim).
    Aes,
    /// FMA/SIMD (V0LTpwn's victim).
    Fma,
    /// Cache-plane-sensitive loads.
    Load,
}

impl VictimClass {
    /// The execution-engine instruction class this victim exercises.
    #[must_use]
    pub fn instr_class(self) -> InstrClass {
        match self {
            VictimClass::Imul => InstrClass::Imul,
            VictimClass::Aes => InstrClass::Aesenc,
            VictimClass::Fma => InstrClass::Fma,
            VictimClass::Load => InstrClass::Load,
        }
    }
}

/// One adversary action in a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleAction {
    /// Write a voltage offset through MSR 0x150.
    OffsetWrite {
        /// Target plane.
        plane: PlaneSel,
        /// Requested offset, mV (≤ 0 in generated campaigns).
        offset_mv: i32,
    },
    /// Pin the victim core's frequency (`cpupower frequency-set`).
    SetFrequency {
        /// Target frequency, MHz (quantized to the model's table).
        mhz: u32,
    },
    /// Run a burst of victim computation on the victim core.
    VictimBurst {
        /// Workload class.
        class: VictimClass,
        /// Operations in the burst.
        ops: u64,
    },
}

/// One timestamped schedule entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleEvent {
    /// Campaign-relative instant, µs.
    pub at_us: u64,
    /// What the adversary does.
    pub action: ScheduleAction,
}

/// A complete randomized campaign: the fuzz input the soak engine runs
/// differentially across deployment levels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignSchedule {
    /// Family that shaped the distribution.
    pub family: AttackFamily,
    /// Polling period the `polling-module` deployment uses, µs.
    pub poll_period_us: u64,
    /// Time-sorted adversary actions.
    pub events: Vec<ScheduleEvent>,
}

/// Polling periods campaigns draw from, µs (subset of the interval
/// sweep's range; ≥ 50 µs so timer work never dominates).
const POLL_PERIODS_US: [u64; 5] = [50, 100, 200, 400, 800];

impl CampaignSchedule {
    /// Generates a campaign for `family` from the rng stream.
    ///
    /// Every draw comes from `rng` in a fixed order, so a given
    /// `(family, seed)` pair always yields the same schedule no matter
    /// where or when it is generated.
    #[must_use]
    pub fn generate(family: AttackFamily, spec: &CpuSpec, rng: &mut SimRng) -> CampaignSchedule {
        let poll_period_us = POLL_PERIODS_US[rng.below(POLL_PERIODS_US.len() as u64) as usize];
        let mut events = Vec::new();
        let mut t_us: u64 = 200 + rng.below(400);
        let table = &spec.freq_table;
        let fast = table.max().mhz();
        let base = table.min().mhz();
        // Quantized pick from the upper half of the frequency table,
        // where the unsafe region is widest.
        let pick_fast = |rng: &mut SimRng| {
            let lo = i64::from(base + (fast - base) / 2);
            let f = rng.in_range(lo, i64::from(fast)) as u32;
            table.quantize(plugvolt_cpu::freq::FreqMhz(f)).mhz()
        };
        let gap = |rng: &mut SimRng| 200 + rng.below(1_300);
        match family {
            AttackFamily::Plundervolt | AttackFamily::V0ltpwn => {
                let (victim, start, step_lo) = if family == AttackFamily::Plundervolt {
                    (
                        if rng.chance(0.5) {
                            VictimClass::Imul
                        } else {
                            VictimClass::Aes
                        },
                        -(80 + rng.in_range(0, 60) as i32),
                        10,
                    )
                } else {
                    (VictimClass::Fma, -(60 + rng.in_range(0, 50) as i32), 8)
                };
                events.push(ScheduleEvent {
                    at_us: t_us,
                    action: ScheduleAction::SetFrequency {
                        mhz: pick_fast(rng),
                    },
                });
                let steps = 3 + rng.below(5);
                let mut offset = start;
                for _ in 0..steps {
                    t_us += gap(rng);
                    events.push(ScheduleEvent {
                        at_us: t_us,
                        action: ScheduleAction::OffsetWrite {
                            plane: PlaneSel::Core,
                            offset_mv: offset,
                        },
                    });
                    t_us += gap(rng);
                    events.push(ScheduleEvent {
                        at_us: t_us,
                        action: ScheduleAction::VictimBurst {
                            class: victim,
                            ops: 5_000 + rng.below(35_000),
                        },
                    });
                    offset -= step_lo + rng.in_range(0, 20) as i32;
                }
            }
            AttackFamily::VoltJockey => {
                events.push(ScheduleEvent {
                    at_us: t_us,
                    action: ScheduleAction::SetFrequency {
                        mhz: pick_fast(rng),
                    },
                });
                let pulses = 2 + rng.below(4);
                for _ in 0..pulses {
                    t_us += gap(rng);
                    let depth = -(180 + rng.in_range(0, 80) as i32);
                    events.push(ScheduleEvent {
                        at_us: t_us,
                        action: ScheduleAction::OffsetWrite {
                            plane: PlaneSel::Core,
                            offset_mv: depth,
                        },
                    });
                    let width = 300 + rng.below(700);
                    events.push(ScheduleEvent {
                        at_us: t_us + width / 2,
                        action: ScheduleAction::VictimBurst {
                            class: VictimClass::Imul,
                            ops: 5_000 + rng.below(25_000),
                        },
                    });
                    t_us += width;
                    events.push(ScheduleEvent {
                        at_us: t_us,
                        action: ScheduleAction::OffsetWrite {
                            plane: PlaneSel::Core,
                            offset_mv: -(rng.in_range(0, 40) as i32),
                        },
                    });
                }
            }
            AttackFamily::Clkscrew => {
                // A standing "benign at base frequency" offset, then
                // frequency-side escalation with no further 0x150 write.
                events.push(ScheduleEvent {
                    at_us: t_us,
                    action: ScheduleAction::OffsetWrite {
                        plane: PlaneSel::Core,
                        offset_mv: -(120 + rng.in_range(0, 50) as i32),
                    },
                });
                let steps = 2 + rng.below(4);
                let mut mhz = base + (fast - base) / 2;
                for _ in 0..steps {
                    t_us += gap(rng);
                    mhz = table
                        .quantize(plugvolt_cpu::freq::FreqMhz(
                            mhz + (fast - mhz) / 2 + rng.below(200) as u32,
                        ))
                        .mhz()
                        .min(fast);
                    events.push(ScheduleEvent {
                        at_us: t_us,
                        action: ScheduleAction::SetFrequency { mhz },
                    });
                    t_us += gap(rng);
                    events.push(ScheduleEvent {
                        at_us: t_us,
                        action: ScheduleAction::VictimBurst {
                            class: VictimClass::Imul,
                            ops: 10_000 + rng.below(30_000),
                        },
                    });
                }
            }
            AttackFamily::Minefield => {
                events.push(ScheduleEvent {
                    at_us: t_us,
                    action: ScheduleAction::SetFrequency {
                        mhz: pick_fast(rng),
                    },
                });
                let rounds = 2 + rng.below(3);
                for _ in 0..rounds {
                    t_us += gap(rng);
                    events.push(ScheduleEvent {
                        at_us: t_us,
                        action: ScheduleAction::OffsetWrite {
                            plane: PlaneSel::Core,
                            offset_mv: -(100 + rng.in_range(0, 80) as i32),
                        },
                    });
                    t_us += gap(rng);
                    events.push(ScheduleEvent {
                        at_us: t_us,
                        action: ScheduleAction::OffsetWrite {
                            plane: PlaneSel::Cache,
                            offset_mv: -(100 + rng.in_range(0, 100) as i32),
                        },
                    });
                    t_us += gap(rng);
                    events.push(ScheduleEvent {
                        at_us: t_us,
                        action: ScheduleAction::VictimBurst {
                            class: if rng.chance(0.5) {
                                VictimClass::Load
                            } else {
                                VictimClass::Imul
                            },
                            ops: 5_000 + rng.below(25_000),
                        },
                    });
                }
            }
        }
        CampaignSchedule {
            family,
            poll_period_us,
            events,
        }
        .canonicalized()
    }

    /// Number of schedule events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total campaign span, µs (last event time).
    #[must_use]
    pub fn span_us(&self) -> u64 {
        self.events.last().map_or(0, |e| e.at_us)
    }

    /// Stable sort by event time (generation can interleave planes).
    #[must_use]
    pub fn canonicalized(mut self) -> CampaignSchedule {
        self.events.sort_by_key(|e| e.at_us);
        self
    }

    /// Shrink move: the schedule with event `idx` removed.
    #[must_use]
    pub fn without_event(&self, idx: usize) -> CampaignSchedule {
        let mut s = self.clone();
        if idx < s.events.len() {
            s.events.remove(idx);
        }
        s
    }

    /// Shrink move: the schedule keeping only events whose index is
    /// outside `lo..hi` (one delta-debugging chunk deletion).
    #[must_use]
    pub fn without_range(&self, lo: usize, hi: usize) -> CampaignSchedule {
        let mut s = self.clone();
        s.events = self
            .events
            .iter()
            .enumerate()
            .filter(|(i, _)| *i < lo || *i >= hi)
            .map(|(_, e)| *e)
            .collect();
        s
    }

    /// Shrink move: every offset halved toward 0 and every frequency
    /// moved halfway back toward the table minimum.
    #[must_use]
    pub fn with_halved_ramps(&self, base_mhz: u32) -> CampaignSchedule {
        let mut s = self.clone();
        for ev in &mut s.events {
            match &mut ev.action {
                ScheduleAction::OffsetWrite { offset_mv, .. } => *offset_mv /= 2,
                ScheduleAction::SetFrequency { mhz } => {
                    *mhz = base_mhz + (*mhz - base_mhz.min(*mhz)) / 2;
                }
                ScheduleAction::VictimBurst { ops, .. } => *ops = (*ops / 2).max(1),
            }
        }
        s
    }

    /// Shrink move: event times rounded up to a coarse `grid_us` grid
    /// (monotonicity preserved), simplifying timing in reproducers.
    #[must_use]
    pub fn with_widened_intervals(&self, grid_us: u64) -> CampaignSchedule {
        let grid = grid_us.max(1);
        let mut s = self.clone();
        let mut floor = 0u64;
        for ev in &mut s.events {
            let rounded = ev.at_us.div_ceil(grid) * grid;
            ev.at_us = rounded.max(floor);
            floor = ev.at_us;
        }
        s
    }
}

impl fmt::Display for CampaignSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} campaign, {} events over {} µs, poll {} µs",
            self.family,
            self.events.len(),
            self.span_us(),
            self.poll_period_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plugvolt_cpu::model::CpuModel;

    fn rng(label: &str) -> SimRng {
        SimRng::from_seed_label(0x50_4c_55_47, label)
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = CpuModel::CometLake.spec();
        for family in AttackFamily::ALL {
            let a = CampaignSchedule::generate(family, &spec, &mut rng("gen"));
            let b = CampaignSchedule::generate(family, &spec, &mut rng("gen"));
            assert_eq!(a, b, "{family}");
            assert!(!a.is_empty(), "{family}");
            assert!(
                a.events.windows(2).all(|w| w[0].at_us <= w[1].at_us),
                "{family}: events must be time-sorted"
            );
        }
    }

    #[test]
    fn families_shape_distinct_campaigns() {
        let spec = CpuModel::CometLake.spec();
        let pv = CampaignSchedule::generate(AttackFamily::Plundervolt, &spec, &mut rng("x"));
        let ck = CampaignSchedule::generate(AttackFamily::Clkscrew, &spec, &mut rng("x"));
        // CLKSCREW never issues a second 0x150 write after its standing
        // offset; Plundervolt ramps several.
        let writes = |s: &CampaignSchedule| {
            s.events
                .iter()
                .filter(|e| matches!(e.action, ScheduleAction::OffsetWrite { .. }))
                .count()
        };
        assert!(writes(&pv) >= 3);
        assert_eq!(writes(&ck), 1);
    }

    #[test]
    fn shrink_moves_reduce_or_simplify() {
        let spec = CpuModel::SkyLake.spec();
        let s = CampaignSchedule::generate(AttackFamily::VoltJockey, &spec, &mut rng("s"));
        assert_eq!(s.without_event(0).len(), s.len() - 1);
        assert_eq!(s.without_range(0, s.len()).len(), 0);
        let halved = s.with_halved_ramps(spec.freq_table.min().mhz());
        for (a, b) in s.events.iter().zip(&halved.events) {
            if let (
                ScheduleAction::OffsetWrite { offset_mv: x, .. },
                ScheduleAction::OffsetWrite { offset_mv: y, .. },
            ) = (&a.action, &b.action)
            {
                assert!(y.abs() <= x.abs());
            }
        }
        let widened = s.with_widened_intervals(500);
        assert!(widened
            .events
            .iter()
            .all(|e| e.at_us % 500 == 0 || e.at_us == 0));
        assert!(widened.events.windows(2).all(|w| w[0].at_us <= w[1].at_us));
    }

    #[test]
    fn schedules_roundtrip_through_json() {
        let spec = CpuModel::KabyLakeR.spec();
        for family in AttackFamily::ALL {
            let s = CampaignSchedule::generate(family, &spec, &mut rng("json"));
            let j = serde_json::to_string(&s).expect("serializes");
            let back: CampaignSchedule = serde_json::from_str(&j).expect("parses");
            assert_eq!(s, back);
        }
    }
}
