//! V0LTpwn-style integrity attack \[14\].
//!
//! V0LTpwn attacked *x86 processor integrity* broadly: rather than one
//! crypto primitive, it showed that undervolting corrupts SIMD/FMA-heavy
//! computation (their key target was vector operations inside SGX),
//! breaking integrity of arbitrary enclave logic. We reproduce the
//! campaign as an integrity-violation-rate measurement over the `Fma`
//! instruction class, sweeping the offset and reporting where the
//! violation rate becomes non-zero.

use crate::campaign::{is_crash, Adversary, AttackReport};
use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::exec::InstrClass;
use plugvolt_cpu::freq::FreqMhz;
use plugvolt_des::time::SimDuration;
use plugvolt_kernel::machine::{Machine, MachineError};
use serde::{Deserialize, Serialize};

/// Campaign parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct V0ltpwnConfig {
    /// Frequency to pin the victim core at.
    pub target_freq: FreqMhz,
    /// First offset tried.
    pub start_offset_mv: i32,
    /// Deepest offset tried.
    pub floor_offset_mv: i32,
    /// Offset step.
    pub step_mv: i32,
    /// FMA operations per offset step.
    pub ops_per_step: u64,
    /// Victim core.
    pub victim_core: CoreId,
}

impl Default for V0ltpwnConfig {
    fn default() -> Self {
        V0ltpwnConfig {
            target_freq: FreqMhz(4_200),
            start_offset_mv: -120,
            floor_offset_mv: -300,
            step_mv: 10,
            ops_per_step: 2_000_000,
            victim_core: CoreId(0),
        }
    }
}

/// Per-offset integrity measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntegrityPoint {
    /// Offset tested.
    pub offset_mv: i32,
    /// FMA operations executed.
    pub ops: u64,
    /// Operations with corrupted results.
    pub violations: u64,
}

impl IntegrityPoint {
    /// Violations per operation.
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.violations as f64 / self.ops as f64
        }
    }
}

/// Full campaign output: the report plus the rate curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct V0ltpwnReport {
    /// Standard campaign summary.
    pub report: AttackReport,
    /// Violation rate per offset step.
    pub curve: Vec<IntegrityPoint>,
}

/// Runs the integrity campaign.
///
/// # Errors
///
/// Propagates non-crash machine errors.
pub fn run_v0ltpwn_attack(
    machine: &mut Machine,
    cfg: &V0ltpwnConfig,
) -> Result<V0ltpwnReport, MachineError> {
    let mut report = AttackReport::new("v0ltpwn-fma-integrity");
    let mut curve = Vec::new();
    let mut adv = Adversary::new(machine, cfg.victim_core)?;
    adv.pin_frequency(machine, cfg.target_freq)?;
    machine.advance(SimDuration::from_millis(1));

    let mut offset = cfg.start_offset_mv;
    while offset >= cfg.floor_offset_mv {
        report.attempts += 1;
        adv.undervolt_and_wait(machine, offset)?;
        let now = machine.now();
        match machine
            .cpu_mut()
            .run_batch(now, cfg.victim_core, InstrClass::Fma, cfg.ops_per_step)
        {
            Ok(violations) => {
                machine.advance(SimDuration::from_millis(1));
                curve.push(IntegrityPoint {
                    offset_mv: offset,
                    ops: cfg.ops_per_step,
                    violations,
                });
                if violations > 0 {
                    report.faulty_events += violations;
                    if !report.success {
                        report.success = true;
                        report.extracted = Some(format!(
                            "FMA integrity broken from {offset} mV at {}",
                            cfg.target_freq
                        ));
                    }
                }
            }
            Err(e) if is_crash(&MachineError::Package(e)) => {
                adv.recover_from_crash(machine, cfg.target_freq, &mut report)?;
                break;
            }
            Err(e) => return Err(MachineError::Package(e)),
        }
        offset -= cfg.step_mv;
    }
    adv.restore(machine)?;
    report.wall = adv.elapsed(machine);
    Ok(V0ltpwnReport { report, curve })
}

#[cfg(test)]
mod tests {
    use super::*;
    use plugvolt_cpu::model::CpuModel;

    #[test]
    fn integrity_breaks_as_offset_deepens() {
        let mut m = Machine::new(CpuModel::KabyLakeR, 66);
        let cfg = V0ltpwnConfig {
            target_freq: FreqMhz(3_400),
            ..V0ltpwnConfig::default()
        };
        let out = run_v0ltpwn_attack(&mut m, &cfg).unwrap();
        assert!(out.report.success, "report: {:?}", out.report);
        // The rate curve is (weakly) increasing with depth until crash.
        let rates: Vec<f64> = out.curve.iter().map(IntegrityPoint::rate).collect();
        assert!(
            rates.first().copied().unwrap_or(1.0) < 1e-6,
            "shallow end clean"
        );
        assert!(
            rates.last().copied().unwrap_or(0.0) > 0.0,
            "deep end faulty"
        );
    }

    #[test]
    fn rate_helper() {
        let p = IntegrityPoint {
            offset_mv: -100,
            ops: 1_000,
            violations: 25,
        };
        assert!((p.rate() - 0.025).abs() < 1e-12);
        let zero = IntegrityPoint {
            offset_mv: -1,
            ops: 0,
            violations: 0,
        };
        assert_eq!(zero.rate(), 0.0);
    }
}
