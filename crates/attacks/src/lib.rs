//! # plugvolt-attacks
//!
//! The DVFS fault-attack baselines of the *Plug Your Volt* (DAC 2024)
//! reproduction — the adversaries the countermeasure must defeat, each
//! driven end-to-end against the simulated machine (frequency pinning
//! via `cpupower`, undervolting via MSR 0x150, victims computing on the
//! faultable execution engine, exploit math on the faulty outputs):
//!
//! - [`plundervolt`] — Plundervolt \[19\]: RSA-CRT + Bellcore factoring
//!   and AES + Giraud DFA;
//! - [`voltjockey`] — VoltJockey \[21\]: cross-core voltage pulses against
//!   a victim on a sibling core;
//! - [`v0ltpwn`] — V0LTpwn \[14\]: SIMD/FMA integrity violation sweeps;
//! - [`clkscrew`] — CLKSCREW \[24\], transplanted: frequency-side
//!   escalation against a benign undervolt, with no 0x150 write at all;
//! - [`cacheplane`] — plane-select attacks: undervolting the cache plane
//!   (Table 1 plane 2) to corrupt load data while the core plane stays
//!   nominal;
//! - [`minefield`] — the Minefield-style deflection *defense* baseline
//!   (canary instrumentation + traps) the paper compares against;
//! - [`crypto`] — the from-scratch RSA-CRT and AES-128 victims plus the
//!   Bellcore/Giraud exploit math;
//! - [`campaign`] — shared adversary plumbing and reports;
//! - [`schedule`] — randomized campaign schedules (and their shrink
//!   hooks) for the differential soak fuzzer.
//!
//! # Examples
//!
//! Factor an RSA modulus on an undefended Comet Lake:
//!
//! ```no_run
//! use plugvolt_attacks::plundervolt::{run_rsa_attack, PlundervoltConfig};
//! use plugvolt_cpu::model::CpuModel;
//! use plugvolt_kernel::machine::Machine;
//!
//! let mut machine = Machine::new(CpuModel::CometLake, 42);
//! let report = run_rsa_attack(&mut machine, &PlundervoltConfig::default(), 1)?;
//! assert!(report.success);
//! # Ok::<(), plugvolt_kernel::machine::MachineError>(())
//! ```

#![warn(missing_docs)]

pub mod cacheplane;
pub mod campaign;
pub mod clkscrew;
pub mod crypto;
pub mod minefield;
pub mod plundervolt;
pub mod schedule;
pub mod v0ltpwn;
pub mod voltjockey;

/// Convenient glob-import of the commonly used names.
pub mod prelude {
    pub use crate::cacheplane::{run_cache_plane_attack, CachePlaneConfig};
    pub use crate::campaign::{Adversary, AttackReport};
    pub use crate::clkscrew::{run_clkscrew_attack, ClkscrewConfig};
    pub use crate::crypto::aes::GiraudAttack;
    pub use crate::crypto::rsa::{bellcore_factor, RsaKey};
    pub use crate::minefield::{
        instrumentation_factor, sign_with_deflection, DeflectedSign, MinefieldConfig,
    };
    pub use crate::plundervolt::{run_aes_attack, run_rsa_attack, PlundervoltConfig};
    pub use crate::schedule::{
        AttackFamily, CampaignSchedule, PlaneSel, ScheduleAction, ScheduleEvent, VictimClass,
    };
    pub use crate::v0ltpwn::{run_v0ltpwn_attack, V0ltpwnConfig, V0ltpwnReport};
    pub use crate::voltjockey::{run_voltjockey_attack, VoltJockeyConfig};
}
