//! Shared attack-campaign plumbing: reports and the undervolt search.
//!
//! Every published DVFS attack follows the same skeleton the paper
//! root-causes in observation O3: pick a frequency, walk the voltage
//! offset deeper until the victim computation faults, exploit the faulty
//! output. The helpers here drive that skeleton against a [`Machine`]
//! so each named attack only supplies its victim and exploit logic.

use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::freq::FreqMhz;
use plugvolt_cpu::package::PackageError;
use plugvolt_des::time::{SimDuration, SimTime};
use plugvolt_kernel::cpupower::CpuPower;
use plugvolt_kernel::machine::{Machine, MachineError};
use plugvolt_kernel::msr_dev::MsrDev;
use plugvolt_msr::addr::Msr;
use plugvolt_msr::oc_mailbox::{OcRequest, Plane};
use serde::{Deserialize, Serialize};

/// Outcome of one attack campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackReport {
    /// Which attack ran.
    pub attack: String,
    /// Undervolt (or frequency) steps attempted.
    pub attempts: u64,
    /// Victim computations that produced observably wrong results.
    pub faulty_events: u64,
    /// Whether the exploit goal (key/factor recovery, integrity break)
    /// was reached.
    pub success: bool,
    /// Human-readable description of what was extracted, if anything.
    pub extracted: Option<String>,
    /// Machine crashes (and resets) caused along the way.
    pub crashes: u32,
    /// Simulated time the campaign consumed.
    pub wall: SimDuration,
}

impl AttackReport {
    /// A fresh, empty report for `attack`.
    #[must_use]
    pub fn new(attack: impl Into<String>) -> Self {
        AttackReport {
            attack: attack.into(),
            attempts: 0,
            faulty_events: 0,
            success: false,
            extracted: None,
            crashes: 0,
            wall: SimDuration::ZERO,
        }
    }
}

/// The adversary's handle on the machine: root access to `cpupower` and
/// the msr device, as in all the published attacks' threat models.
#[derive(Debug)]
pub struct Adversary {
    cpupower: CpuPower,
    dev: MsrDev,
    victim_core: CoreId,
    started: SimTime,
}

impl Adversary {
    /// Takes (privileged) control of the machine, targeting `victim_core`.
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn new(machine: &mut Machine, victim_core: CoreId) -> Result<Self, MachineError> {
        Ok(Adversary {
            cpupower: CpuPower::new(machine),
            dev: MsrDev::open(machine, victim_core)?,
            victim_core,
            started: machine.now(),
        })
    }

    /// The victim core.
    #[must_use]
    pub fn victim_core(&self) -> CoreId {
        self.victim_core
    }

    /// Time elapsed since the adversary started.
    #[must_use]
    pub fn elapsed(&self, machine: &Machine) -> SimDuration {
        machine.now().saturating_duration_since(self.started)
    }

    /// Pins the victim core's frequency (`cpupower frequency-set`).
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn pin_frequency(
        &mut self,
        machine: &mut Machine,
        freq: FreqMhz,
    ) -> Result<FreqMhz, MachineError> {
        self.cpupower.frequency_set(machine, self.victim_core, freq)
    }

    /// Writes a core-plane voltage offset through MSR 0x150 and waits the
    /// empirically known voltage-application delay (what Plundervolt's
    /// exploit loop does between the write and the fault window).
    ///
    /// Returns `false` if the write was neutralized synchronously
    /// (OCM disabled / microcode write-ignore).
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn undervolt_and_wait(
        &mut self,
        machine: &mut Machine,
        offset_mv: i32,
    ) -> Result<bool, MachineError> {
        let req = OcRequest::write_offset(offset_mv, Plane::Core).encode();
        let outcome = self.dev.write(machine, Msr::OC_MAILBOX, req)?;
        // Wait out mailbox latency + rail slew, countermeasures running.
        machine.advance(SimDuration::from_millis(2));
        Ok(outcome.was_written())
    }

    /// Clears the offset and waits for the rail to recover.
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn restore(&mut self, machine: &mut Machine) -> Result<(), MachineError> {
        let req = OcRequest::write_offset(0, Plane::Core).encode();
        let _ = self.dev.write(machine, Msr::OC_MAILBOX, req)?;
        machine.advance(SimDuration::from_millis(2));
        Ok(())
    }

    /// Recovers a crashed machine the way the attack scripts do: reset,
    /// re-pin the frequency, count the crash.
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn recover_from_crash(
        &mut self,
        machine: &mut Machine,
        freq: FreqMhz,
        report: &mut AttackReport,
    ) -> Result<(), MachineError> {
        report.crashes += 1;
        let now = machine.now();
        machine.cpu_mut().reset(now);
        machine.advance(SimDuration::from_millis(5));
        self.pin_frequency(machine, freq)?;
        machine.advance(SimDuration::from_millis(1));
        Ok(())
    }
}

/// Whether an error is the machine crashing (expected during campaigns).
#[must_use]
pub fn is_crash(e: &MachineError) -> bool {
    matches!(e, MachineError::Package(PackageError::Crashed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use plugvolt_cpu::model::CpuModel;

    #[test]
    fn adversary_controls_frequency_and_voltage() {
        let mut m = Machine::new(CpuModel::CometLake, 12);
        let mut adv = Adversary::new(&mut m, CoreId(0)).unwrap();
        let f = adv.pin_frequency(&mut m, FreqMhz(4_900)).unwrap();
        assert_eq!(f, FreqMhz(4_900));
        let landed = adv.undervolt_and_wait(&mut m, -100).unwrap();
        assert!(landed);
        assert!((-100..=-99).contains(&m.cpu().core_offset_mv()));
        // After the wait the rail has moved.
        let v = m.cpu().core_voltage_mv(m.now());
        let nominal = m.cpu().spec().nominal_voltage_mv(FreqMhz(4_900));
        assert!(v < nominal - 90.0, "v={v}");
        adv.restore(&mut m).unwrap();
        assert_eq!(m.cpu().core_offset_mv(), 0);
        assert!(adv.elapsed(&m) > SimDuration::from_millis(4));
    }

    #[test]
    fn crash_recovery_restores_operation() {
        let mut m = Machine::new(CpuModel::CometLake, 12);
        let mut adv = Adversary::new(&mut m, CoreId(0)).unwrap();
        adv.pin_frequency(&mut m, FreqMhz(4_900)).unwrap();
        let mut report = AttackReport::new("test");
        // Undervolt into oblivion.
        adv.undervolt_and_wait(&mut m, -600).unwrap_or(false);
        let now = m.now();
        let r = m.cpu_mut().run_imul_loop(now, CoreId(0), 1_000);
        assert!(r.is_err(), "should have crashed");
        adv.recover_from_crash(&mut m, FreqMhz(4_900), &mut report)
            .unwrap();
        assert_eq!(report.crashes, 1);
        assert!(!m.cpu().is_crashed());
        let now = m.now();
        assert_eq!(m.cpu_mut().run_imul_loop(now, CoreId(0), 1_000), Ok(0));
    }

    #[test]
    fn report_defaults() {
        let r = AttackReport::new("x");
        assert_eq!(r.attack, "x");
        assert!(!r.success);
        assert_eq!(r.attempts, 0);
    }
}
