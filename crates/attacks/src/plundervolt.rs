//! The Plundervolt attack \[19\]: software-based undervolting against
//! computations that would be protected inside SGX.
//!
//! Two exploit paths, both from the original paper:
//!
//! - [`run_rsa_attack`] — fault one half of an RSA-CRT signature and
//!   factor the modulus with the Bellcore gcd;
//! - [`run_aes_attack`] — collect correct/faulty AES ciphertext pairs
//!   and recover the key with the Giraud DFA.
//!
//! The attacker walks the voltage offset deeper from a starting guess,
//! exactly like the published proof-of-concept: write 0x150, wait for
//! the voltage to apply, run the victim repeatedly, restore, repeat.

use crate::campaign::{is_crash, Adversary, AttackReport};
use crate::crypto::aes::{self, GiraudAttack};
use crate::crypto::rsa::{bellcore_factor, RsaKey};
use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::exec::InstrClass;
use plugvolt_cpu::freq::FreqMhz;
use plugvolt_des::rng::SimRng;
use plugvolt_des::time::SimDuration;
use plugvolt_kernel::machine::{Machine, MachineError};
use serde::{Deserialize, Serialize};

/// Campaign parameters (defaults mirror the published attack loops).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlundervoltConfig {
    /// Frequency the attacker pins the victim core to (fast = shallow
    /// unsafe band = fewer millivolts to walk).
    pub target_freq: FreqMhz,
    /// First offset tried (mV, negative).
    pub start_offset_mv: i32,
    /// Deepest offset tried before giving up.
    pub floor_offset_mv: i32,
    /// Step between attempts.
    pub step_mv: i32,
    /// Victim computations run per offset step.
    pub victims_per_step: u32,
    /// Core the victim is pinned to.
    pub victim_core: CoreId,
    /// Stop immediately once the exploit goal is reached.
    pub stop_on_success: bool,
}

impl Default for PlundervoltConfig {
    fn default() -> Self {
        PlundervoltConfig {
            target_freq: FreqMhz(4_000),
            start_offset_mv: -100,
            floor_offset_mv: -300,
            step_mv: 5,
            victims_per_step: 40,
            victim_core: CoreId(0),
            stop_on_success: true,
        }
    }
}

/// Runs the RSA-CRT + Bellcore campaign.
///
/// The victim signs inside what would be an enclave; its modular
/// multiplications execute on the machine's faultable `imul` path. On a
/// faulty signature the attacker factors `n`.
///
/// # Errors
///
/// Propagates non-crash machine errors.
pub fn run_rsa_attack(
    machine: &mut Machine,
    cfg: &PlundervoltConfig,
    seed: u64,
) -> Result<AttackReport, MachineError> {
    let mut report = AttackReport::new("plundervolt-rsa-crt");
    let mut rng = SimRng::from_seed_label(seed, "plundervolt-rsa");
    let key = RsaKey::generate(&mut rng);
    let mut adv = Adversary::new(machine, cfg.victim_core)?;
    adv.pin_frequency(machine, cfg.target_freq)?;
    machine.advance(SimDuration::from_millis(1));

    let mut offset = cfg.start_offset_mv;
    'sweep: while offset >= cfg.floor_offset_mv {
        report.attempts += 1;
        adv.undervolt_and_wait(machine, offset)?;
        for _ in 0..cfg.victims_per_step {
            let m_msg = rng.next_u64() % key.n;
            match sign_on_machine(machine, cfg.victim_core, &key, m_msg) {
                Ok(sig) => {
                    machine.advance(SimDuration::from_micros(20));
                    if !key.verify(m_msg, sig) {
                        report.faulty_events += 1;
                        if let Some(factor) = bellcore_factor(key.n, key.e, m_msg, sig) {
                            report.success = true;
                            report.extracted =
                                Some(format!("prime factor {factor:#x} of n={:#x}", key.n));
                            if cfg.stop_on_success {
                                break 'sweep;
                            }
                        }
                    }
                }
                Err(e) if is_crash(&e) => {
                    adv.recover_from_crash(machine, cfg.target_freq, &mut report)?;
                    continue 'sweep; // retry the same offset post-reset
                }
                Err(e) => return Err(e),
            }
        }
        offset -= cfg.step_mv;
    }
    adv.restore(machine)?;
    report.wall = adv.elapsed(machine);
    Ok(report)
}

/// Signs on the simulated CPU: every multiplication goes through the
/// package's faultable `imul`.
fn sign_on_machine(
    machine: &mut Machine,
    core: CoreId,
    key: &RsaKey,
    msg: u64,
) -> Result<u64, MachineError> {
    let now = machine.now();
    let mut failure = None;
    let sig = {
        let cpu = machine.cpu_mut();
        let mut mul = |a: u64, b: u64| match cpu.execute_imul(now, core, a, b) {
            Ok(ex) => ex.value,
            Err(e) => {
                failure.get_or_insert(e);
                a.wrapping_mul(b)
            }
        };
        key.sign_crt(msg, &mut mul)
    };
    match failure {
        Some(e) => Err(MachineError::Package(e)),
        None => Ok(sig),
    }
}

/// Runs the AES + Giraud-DFA campaign.
///
/// Each encryption's fault behaviour derives from the machine state via
/// the `Aesenc` instruction class: under a timing violation a round
/// computation flips bits; a fault landing on the final round's input is
/// the Giraud position (single-byte ciphertext diff), earlier faults
/// spread through MixColumns and are filtered out by the attacker.
///
/// # Errors
///
/// Propagates non-crash machine errors.
pub fn run_aes_attack(
    machine: &mut Machine,
    cfg: &PlundervoltConfig,
    seed: u64,
) -> Result<AttackReport, MachineError> {
    let mut report = AttackReport::new("plundervolt-aes-dfa");
    let mut rng = SimRng::from_seed_label(seed, "plundervolt-aes");
    let mut key = [0u8; 16];
    for b in &mut key {
        *b = rng.next_u64() as u8;
    }
    let mut dfa = GiraudAttack::new();
    let mut adv = Adversary::new(machine, cfg.victim_core)?;
    adv.pin_frequency(machine, cfg.target_freq)?;
    machine.advance(SimDuration::from_millis(1));

    let mut offset = cfg.start_offset_mv;
    'sweep: while offset >= cfg.floor_offset_mv {
        report.attempts += 1;
        adv.undervolt_and_wait(machine, offset)?;
        for _ in 0..cfg.victims_per_step {
            let mut pt = [0u8; 16];
            for b in &mut pt {
                *b = rng.next_u64() as u8;
            }
            match encrypt_on_machine(machine, cfg.victim_core, &key, &pt, &mut rng) {
                Ok((correct, observed)) => {
                    machine.advance(SimDuration::from_micros(5));
                    if observed != correct {
                        report.faulty_events += 1;
                        // Filter for single-byte diffs (Giraud position).
                        let diff = (0..16).filter(|&i| observed[i] != correct[i]).count();
                        if diff == 1 {
                            dfa.observe(&correct, &observed);
                            if let Some(master) = dfa.master_key() {
                                report.success = master == key;
                                report.extracted = Some(format!("AES-128 key {master:02x?}"));
                                if cfg.stop_on_success {
                                    break 'sweep;
                                }
                            }
                        }
                    }
                }
                Err(e) if is_crash(&e) => {
                    adv.recover_from_crash(machine, cfg.target_freq, &mut report)?;
                    continue 'sweep;
                }
                Err(e) => return Err(e),
            }
        }
        offset -= cfg.step_mv;
    }
    adv.restore(machine)?;
    report.wall = adv.elapsed(machine);
    Ok(report)
}

/// Encrypts one block on the simulated CPU, sampling round faults from
/// the machine's physical state. Returns (correct, observed) ciphertexts.
fn encrypt_on_machine(
    machine: &mut Machine,
    core: CoreId,
    key: &[u8; 16],
    pt: &[u8; 16],
    rng: &mut SimRng,
) -> Result<([u8; 16], [u8; 16]), MachineError> {
    let now = machine.now();
    let freq = machine.cpu().core_freq(core)?;
    let v = machine.cpu().core_voltage_mv(now);
    let engine = machine.cpu().engine();
    let slack = engine.class_slack_ps(InstrClass::Aesenc, freq, v);
    let fm = engine.fault_model();
    // Crash takes the whole package down, as for any other instruction.
    if fm.classify(slack) == plugvolt_circuit::timing::TimingState::Crash {
        // Latch the crash through the package by touching the rail.
        let _ = machine
            .cpu_mut()
            .run_batch(now, core, InstrClass::Aesenc, 1);
        return Err(MachineError::Package(
            plugvolt_cpu::package::PackageError::Crashed,
        ));
    }
    let correct = aes::encrypt(key, pt);
    // Ten rounds, each an opportunity to fault.
    let p_round = fm.fault_probability(slack);
    let p_block = 1.0 - (1.0 - p_round).powi(10);
    let observed = if rng.chance(p_block) {
        if rng.chance(0.1) {
            // The fault landed on the final round's input: Giraud position.
            aes::encrypt_with_fault(key, pt, Some(aes::sample_round_fault(rng)))
        } else {
            // An earlier round: MixColumns spreads it across a column.
            let mut garbled = correct;
            let col = rng.below(4) as usize;
            for r in 0..4 {
                garbled[4 * col + r] ^= (rng.next_u64() as u8) | 1;
            }
            garbled
        }
    } else {
        correct
    };
    Ok((correct, observed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use plugvolt_cpu::model::CpuModel;

    #[test]
    fn rsa_attack_succeeds_on_undefended_machine() {
        let mut m = Machine::new(CpuModel::CometLake, 42);
        let report = run_rsa_attack(&mut m, &PlundervoltConfig::default(), 1).unwrap();
        assert!(report.success, "report: {report:?}");
        assert!(report.faulty_events > 0);
        assert!(report
            .extracted
            .as_deref()
            .unwrap()
            .contains("prime factor"));
    }

    #[test]
    fn rsa_attack_needs_the_unsafe_region() {
        // Stop the sweep above the fault onset: no faults, no factor.
        let mut m = Machine::new(CpuModel::CometLake, 42);
        let cfg = PlundervoltConfig {
            start_offset_mv: -20,
            floor_offset_mv: -60,
            ..PlundervoltConfig::default()
        };
        let report = run_rsa_attack(&mut m, &cfg, 1).unwrap();
        assert!(!report.success);
        assert_eq!(report.faulty_events, 0);
    }

    #[test]
    fn aes_attack_succeeds_on_undefended_machine() {
        let mut m = Machine::new(CpuModel::CometLake, 43);
        // 600 victims/step gives the Giraud DFA enough single-byte pairs
        // to pin all 16 key bytes under the in-tree xoshiro stream.
        let cfg = PlundervoltConfig {
            victims_per_step: 600,
            ..PlundervoltConfig::default()
        };
        let report = run_aes_attack(&mut m, &cfg, 2).unwrap();
        assert!(report.success, "report: {report:?}");
        assert!(report.extracted.as_deref().unwrap().contains("AES-128 key"));
    }

    #[test]
    fn attacks_are_deterministic() {
        let run = || {
            let mut m = Machine::new(CpuModel::CometLake, 42);
            run_rsa_attack(&mut m, &PlundervoltConfig::default(), 1).unwrap()
        };
        assert_eq!(run(), run());
    }
}
