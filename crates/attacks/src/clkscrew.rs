//! CLKSCREW-style frequency-side attack \[24\].
//!
//! CLKSCREW showed that the *frequency* half of the DVFS pair is just as
//! weaponizable as the voltage half. Translated to the Intel setting of
//! this paper: a victim holding a **benign, safe undervolt** (say
//! −90 mV at its current frequency) can be pushed into the unsafe region
//! *without a single 0x150 write* — the adversary merely raises the
//! core frequency until the existing offset becomes unsafe (shrinking
//! `T_clk` on the right-hand side of Eq. 1 instead of stretching the
//! left-hand side).
//!
//! This is the scenario that separates the paper's countermeasure from
//! naive offset-clamping-only defenses: the polling module checks the
//! *(frequency, offset) pair*, so it catches the frequency-side attack
//! too, restoring safety by clearing the offset.

use crate::campaign::{is_crash, Adversary, AttackReport};
use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::freq::FreqMhz;
use plugvolt_des::time::SimDuration;
use plugvolt_kernel::machine::{Machine, MachineError};
use serde::{Deserialize, Serialize};

/// Campaign parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClkscrewConfig {
    /// The benign undervolt the victim runs with (safe at
    /// `victim_freq`).
    pub benign_offset_mv: i32,
    /// The victim's normal operating frequency.
    pub victim_freq: FreqMhz,
    /// Victim `imul` iterations per frequency step.
    pub victims_per_step: u64,
    /// Victim core.
    pub victim_core: CoreId,
}

impl Default for ClkscrewConfig {
    fn default() -> Self {
        ClkscrewConfig {
            benign_offset_mv: -90,
            victim_freq: FreqMhz(1_800),
            victims_per_step: 1_000_000,
            victim_core: CoreId(0),
        }
    }
}

/// Runs the frequency-escalation campaign: establish the benign offset,
/// then walk the frequency up through the table looking for faults.
///
/// # Errors
///
/// Propagates non-crash machine errors.
pub fn run_clkscrew_attack(
    machine: &mut Machine,
    cfg: &ClkscrewConfig,
) -> Result<AttackReport, MachineError> {
    let mut report = AttackReport::new("clkscrew-frequency-side");
    let mut adv = Adversary::new(machine, cfg.victim_core)?;

    // The *victim* (or its power-management daemon) sets a benign,
    // safe-at-current-frequency undervolt.
    adv.pin_frequency(machine, cfg.victim_freq)?;
    adv.undervolt_and_wait(machine, cfg.benign_offset_mv)?;

    // The adversary never touches 0x150: frequency escalation only.
    let table = machine.cpu().spec().freq_table.clone();
    let mut freq = cfg.victim_freq;
    while freq < table.max() {
        freq = FreqMhz(freq.mhz() + table.step_mhz() * 4);
        freq = table.quantize(freq);
        report.attempts += 1;
        adv.pin_frequency(machine, freq)?;
        machine.advance(SimDuration::from_millis(1));
        let now = machine.now();
        match machine
            .cpu_mut()
            .run_imul_loop(now, cfg.victim_core, cfg.victims_per_step)
        {
            Ok(faults) => {
                machine.advance(SimDuration::from_micros(600));
                if faults > 0 {
                    report.faulty_events += faults;
                    report.success = true;
                    report.extracted = Some(format!(
                        "victim faulted at {freq} with benign offset {} mV",
                        cfg.benign_offset_mv
                    ));
                    break;
                }
            }
            Err(e) if is_crash(&MachineError::Package(e)) => {
                adv.recover_from_crash(machine, cfg.victim_freq, &mut report)?;
                break;
            }
            Err(e) => return Err(MachineError::Package(e)),
        }
    }
    adv.restore(machine)?;
    report.wall = adv.elapsed(machine);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plugvolt_cpu::model::CpuModel;

    #[test]
    fn frequency_escalation_faults_undefended_machine() {
        let mut m = Machine::new(CpuModel::CometLake, 77);
        // −170 mV is comfortably safe at 1.8 GHz on Comet Lake but unsafe
        // near the top of the table.
        let cfg = ClkscrewConfig {
            benign_offset_mv: -170,
            ..ClkscrewConfig::default()
        };
        let report = run_clkscrew_attack(&mut m, &cfg).unwrap();
        assert!(report.success, "report: {report:?}");
        assert!(report.faulty_events > 0);
    }

    #[test]
    fn safe_offset_survives_full_escalation() {
        let mut m = Machine::new(CpuModel::CometLake, 77);
        // −40 mV is safe across the whole table: no faults at any step.
        let cfg = ClkscrewConfig {
            benign_offset_mv: -40,
            ..ClkscrewConfig::default()
        };
        let report = run_clkscrew_attack(&mut m, &cfg).unwrap();
        assert!(!report.success);
        assert_eq!(report.faulty_events, 0);
        assert!(report.attempts > 5, "swept the table");
    }
}
