//! Cache-plane undervolting — the plane-select attack surface.
//!
//! Table 1 of the paper documents that MSR 0x150 can target five voltage
//! planes; published attacks largely used plane 0 (core), but the cache
//! plane (2) powers the L1/L2 arrays that time every load. This campaign
//! undervolts plane 2 only — the core plane stays at nominal — and
//! corrupts a load-heavy victim (a pointer-chasing checksum stand-in).
//!
//! It exists to probe a blind spot: a countermeasure that polls only the
//! mailbox's default (core) response register never sees the cache-plane
//! offset. The paper's Algorithm 3 as written has exactly that shape;
//! the reproduction's polling module closes it when configured with
//! `planes: [Core, Cache]` (see the plane ablation in EXPERIMENTS.md).

use crate::campaign::{is_crash, Adversary, AttackReport};
use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::exec::InstrClass;
use plugvolt_cpu::freq::FreqMhz;
use plugvolt_des::time::SimDuration;
use plugvolt_kernel::machine::{Machine, MachineError};
use plugvolt_msr::addr::Msr;
use plugvolt_msr::oc_mailbox::{OcRequest, Plane};
use serde::{Deserialize, Serialize};

/// Campaign parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachePlaneConfig {
    /// Frequency the victim core is pinned to.
    pub target_freq: FreqMhz,
    /// First cache-plane offset tried (mV, negative).
    pub start_offset_mv: i32,
    /// Deepest offset tried.
    pub floor_offset_mv: i32,
    /// Offset step.
    pub step_mv: i32,
    /// Load operations per offset step.
    pub loads_per_step: u64,
    /// Victim core.
    pub victim_core: CoreId,
}

impl Default for CachePlaneConfig {
    fn default() -> Self {
        CachePlaneConfig {
            target_freq: FreqMhz(4_400),
            start_offset_mv: -150,
            floor_offset_mv: -320,
            step_mv: 5,
            loads_per_step: 2_000_000,
            victim_core: CoreId(0),
        }
    }
}

/// Runs the cache-plane campaign: walk plane-2 offsets deeper until the
/// load-heavy victim returns corrupted data.
///
/// # Errors
///
/// Propagates non-crash machine errors.
pub fn run_cache_plane_attack(
    machine: &mut Machine,
    cfg: &CachePlaneConfig,
) -> Result<AttackReport, MachineError> {
    let mut report = AttackReport::new("cache-plane-undervolt");
    let mut adv = Adversary::new(machine, cfg.victim_core)?;
    adv.pin_frequency(machine, cfg.target_freq)?;
    machine.advance(SimDuration::from_millis(1));

    let dev = plugvolt_kernel::msr_dev::MsrDev::open(machine, cfg.victim_core)?;
    let mut offset = cfg.start_offset_mv;
    // The floor may exceed the mailbox field on purpose; clamp.
    let floor = cfg.floor_offset_mv.max(OcRequest::MIN_OFFSET_MV);
    while offset >= floor {
        report.attempts += 1;
        let req = OcRequest::write_offset(offset, Plane::Cache).encode();
        let _ = dev.write(machine, Msr::OC_MAILBOX, req)?;
        // Cover the tracks: point the mailbox response register back at
        // the (clean) core plane so a defender reading it the way the
        // paper's Algorithm 3 does sees nothing amiss.
        let hide = OcRequest::read(Plane::Core).encode();
        let _ = dev.write(machine, Msr::OC_MAILBOX, hide)?;
        machine.advance(SimDuration::from_millis(2));
        let now = machine.now();
        match machine.cpu_mut().run_batch(
            now,
            cfg.victim_core,
            InstrClass::Load,
            cfg.loads_per_step,
        ) {
            Ok(corrupted) => {
                machine.advance(SimDuration::from_millis(1));
                if corrupted > 0 {
                    report.faulty_events += corrupted;
                    if !report.success {
                        report.success = true;
                        report.extracted = Some(format!(
                            "load data corrupted from cache-plane offset {offset} mV at {}",
                            cfg.target_freq
                        ));
                    }
                    break;
                }
            }
            Err(e) if is_crash(&MachineError::Package(e)) => {
                adv.recover_from_crash(machine, cfg.target_freq, &mut report)?;
                break;
            }
            Err(e) => return Err(MachineError::Package(e)),
        }
        offset -= cfg.step_mv;
    }
    // Restore the cache plane.
    let restore = OcRequest::write_offset(0, Plane::Cache).encode();
    let _ = dev.write(machine, Msr::OC_MAILBOX, restore)?;
    machine.advance(SimDuration::from_millis(2));
    report.wall = adv.elapsed(machine);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plugvolt::characterize::analytic_map;
    use plugvolt::deploy::{deploy, Deployment};
    use plugvolt::poll::PollConfig;
    use plugvolt_cpu::model::CpuModel;

    #[test]
    fn cache_plane_attack_breaks_undefended_machine() {
        let mut m = Machine::new(CpuModel::CometLake, 61);
        let report = run_cache_plane_attack(&mut m, &CachePlaneConfig::default()).unwrap();
        assert!(report.success, "report: {report:?}");
        assert!(report.faulty_events > 0);
        // The core plane stayed at nominal throughout.
        assert_eq!(m.cpu().plane_offset_mv(Plane::Core), 0);
    }

    #[test]
    fn core_only_polling_misses_the_hidden_cache_plane() {
        // The honest gap: the attacker re-points the mailbox response
        // register at the clean core plane after each cache-plane write,
        // so Algorithm 3's single read never observes the offset.
        let mut m = Machine::new(CpuModel::CometLake, 61);
        let map = analytic_map(&CpuModel::CometLake.spec());
        let cfg = PollConfig::default(); // planes: [Core]
        let deployed = deploy(&mut m, &map, Deployment::PollingModule(cfg)).unwrap();
        let report = run_cache_plane_attack(&mut m, &CachePlaneConfig::default()).unwrap();
        assert!(
            report.success,
            "expected the hidden cache-plane attack to slip past core-only polling: {report:?}"
        );
        assert_eq!(deployed.poll_stats.unwrap().borrow().detections, 0);
    }

    #[test]
    fn plane_aware_polling_blocks_the_cache_plane() {
        let mut m = Machine::new(CpuModel::CometLake, 61);
        let map = analytic_map(&CpuModel::CometLake.spec());
        let cfg = PollConfig {
            planes: vec![Plane::Core, Plane::Cache],
            ..PollConfig::default()
        };
        let deployed = deploy(&mut m, &map, Deployment::PollingModule(cfg)).unwrap();
        let report = run_cache_plane_attack(&mut m, &CachePlaneConfig::default()).unwrap();
        assert!(!report.success, "report: {report:?}");
        assert_eq!(report.faulty_events, 0);
        let stats = deployed.poll_stats.unwrap();
        assert!(stats.borrow().detections > 0, "cache plane never detected");
    }

    #[test]
    fn microcode_and_clamp_cover_all_planes() {
        // The Sec. 5 deployments filter the *write*, so the plane choice
        // cannot bypass them.
        let map = analytic_map(&CpuModel::CometLake.spec());
        for deployment in [
            Deployment::Microcode {
                revision: 0xf5,
                margin_mv: 5,
            },
            Deployment::HardwareMsr { margin_mv: 5 },
        ] {
            let mut m = Machine::new(CpuModel::CometLake, 61);
            deploy(&mut m, &map, deployment.clone()).unwrap();
            let report = run_cache_plane_attack(&mut m, &CachePlaneConfig::default()).unwrap();
            assert!(!report.success, "{}: {report:?}", deployment.label());
        }
    }
}
