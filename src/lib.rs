pub use plugvolt;
